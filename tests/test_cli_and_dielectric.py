"""CLI subcommands and the dielectric-properties module."""

import numpy as np
import pytest

from repro.cli import main
from repro.dfpt.dielectric import (
    clausius_mossotti_dielectric,
    polarizability_anisotropy,
    refractive_index,
)


class TestDielectric:
    def test_dilute_limit_is_vacuum(self):
        alpha = np.eye(3) * 10.0
        eps = clausius_mossotti_dielectric(alpha, molecular_volume=1e9)
        assert eps == pytest.approx(1.0, abs=1e-6)

    def test_water_like_refractive_index(self):
        # alpha ~ 9.8 a.u., volume per molecule ~ 30 A^3 ~ 202 Bohr^3.
        alpha = np.eye(3) * 9.8
        n = refractive_index(alpha, 202.0)
        assert 1.2 < n < 1.5  # optical n of water ~ 1.33

    def test_monotone_in_density(self):
        alpha = np.eye(3) * 9.8
        eps_dense = clausius_mossotti_dielectric(alpha, 150.0)
        eps_dilute = clausius_mossotti_dielectric(alpha, 400.0)
        assert eps_dense > eps_dilute

    def test_polarization_catastrophe_raises(self):
        with pytest.raises(ValueError, match="pole"):
            clausius_mossotti_dielectric(np.eye(3) * 100.0, 10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            clausius_mossotti_dielectric(np.eye(3), -1.0)
        with pytest.raises(ValueError):
            clausius_mossotti_dielectric(-np.eye(3), 10.0)

    def test_anisotropy_zero_for_isotropic(self):
        assert polarizability_anisotropy(np.eye(3) * 5.0) == pytest.approx(0.0)

    def test_anisotropy_axial(self):
        alpha = np.diag([4.0, 4.0, 7.0])
        assert polarizability_anisotropy(alpha) == pytest.approx(3.0)

    def test_anisotropy_shape_check(self):
        with pytest.raises(ValueError):
            polarizability_anisotropy(np.eye(2))


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Sunway" in out and "MI50" in out

    def test_physics_on_geometry_file(self, tmp_path, capsys):
        from repro.atoms import hydrogen_molecule, write_geometry_in

        path = tmp_path / "geometry.in"
        write_geometry_in(hydrogen_molecule(), path)
        assert main(["physics", str(path), "--level", "minimal"]) == 0
        out = capsys.readouterr().out
        assert "polarizability" in out and "SCF converged" in out

    def test_model_polyethylene(self, capsys):
        assert main([
            "model", "--polyethylene", "602", "--machine", "hpc2",
            "--ranks", "16",
        ]) == 0
        out = capsys.readouterr().out
        assert "cycle" in out and "memory/rank" in out

    def test_model_baseline_flag(self, capsys):
        assert main([
            "model", "--polyethylene", "602", "--machine", "hpc1",
            "--ranks", "8", "--baseline",
        ]) == 0
        assert "baseline" in capsys.readouterr().out

    def test_missing_input_errors(self):
        with pytest.raises(SystemExit):
            main(["model"])

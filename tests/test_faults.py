"""Fault injection, retry/backoff, degradation, checkpoint-restart.

The unmarked tests are the fast smoke profile and run in tier-1; the
``chaos``-marked sweeps are deselected by default (``make chaos``).
"""

import numpy as np
import pytest

from repro.comm import (
    BaselineRowwiseAllreduce,
    PackedAllreduce,
    PackedHierarchicalAllreduce,
    ResilientReduction,
    default_ladder,
)
from repro.dfpt.response import DFPTSolver
from repro.dft.scf import SCFDriver
from repro.atoms import hydrogen_molecule
from repro.errors import (
    CollectiveTimeoutError,
    CommunicationError,
    FaultInjectionError,
    ShmCorruptionError,
)
from repro.runtime import (
    CycleFaultInjector,
    FaultPlan,
    FaultRates,
    HPC1_SUNWAY,
    HPC2_AMD,
    RetryPolicy,
    ScheduledFault,
)
from repro.testing import run_chaos


def serial_sum(buffers):
    """Rank-ascending accumulation — the collectives' exact order."""
    out = buffers[0].copy()
    for b in buffers[1:]:
        out = out + b
    return out


class TestFaultPlan:
    def test_decisions_are_deterministic(self):
        for _ in range(2):
            plans = [
                FaultPlan(seed=7, rates=FaultRates(message_corruption=0.5))
                for _ in range(2)
            ]
            verdicts = [
                [
                    p.collective_fault(f"allreduce[{i}]", i, 0, range(4))
                    for i in range(20)
                ]
                for p in plans
            ]
            assert [
                (e.kind if e else None) for e in verdicts[0]
            ] == [(e.kind if e else None) for e in verdicts[1]]

    def test_different_seeds_differ(self):
        def kinds(seed):
            p = FaultPlan(seed=seed, rates=FaultRates(message_corruption=0.5))
            return tuple(
                (e.kind if e else None)
                for i in range(40)
                for e in [p.collective_fault(f"allreduce[{i}]", i, 0, range(4))]
            )

        assert kinds(1) != kinds(2)

    def test_schedule_fires_at_exact_call(self):
        plan = FaultPlan(schedule=[ScheduledFault("message_drop", call_index=3)])
        hits = [
            plan.collective_fault(f"allreduce[{i}]", i, 0, range(4)) for i in range(6)
        ]
        assert [e.kind if e else None for e in hits] == [
            None, None, None, "message_drop", None, None,
        ]
        # Non-persistent: the retry attempt succeeds.
        assert plan.collective_fault("allreduce[3]", 3, 1, range(4)) is None

    def test_persistent_schedule_fires_every_attempt(self):
        plan = FaultPlan(
            schedule=[ScheduledFault("message_corruption", 0, persistent=True)]
        )
        for attempt in range(5):
            ev = plan.collective_fault("allreduce[0]", 0, attempt, range(4))
            assert ev is not None and ev.kind == "message_corruption"

    def test_rank_failure_budget(self):
        plan = FaultPlan(
            seed=3, rates=FaultRates(rank_failure=1.0), max_rank_failures=1
        )
        events = [
            plan.collective_fault(f"allreduce[{i}]", i, 0, range(4)) for i in range(5)
        ]
        assert sum(1 for e in events if e and e.kind == "rank_failure") == 1

    def test_rate_validation(self):
        with pytest.raises(FaultInjectionError):
            FaultRates(message_corruption=1.5)
        with pytest.raises(FaultInjectionError):
            FaultRates(message_corruption=0.6, message_drop=0.6)
        with pytest.raises(FaultInjectionError):
            ScheduledFault("meteor_strike", 0)
        with pytest.raises(FaultInjectionError):
            RetryPolicy(max_retries=-1)

    def test_backoff_is_exponential(self):
        policy = RetryPolicy(base_backoff=1e-4, backoff_factor=2.0)
        assert policy.backoff(3) == pytest.approx(8e-4)


class TestSimCommResilience:
    def test_no_plan_means_no_overhead(self, make_cluster, rng):
        cl = make_cluster(4)
        cl.comm().allreduce([rng.normal(size=5) for _ in range(4)])
        assert cl.stats.retries == 0 and cl.stats.backoff_time == 0.0

    def test_corruption_is_retried_bit_exact(self, make_cluster, rng):
        plan = FaultPlan(schedule=[ScheduledFault("message_corruption", 0)])
        cl = make_cluster(4, fault_plan=plan)
        bufs = [rng.normal(size=(3, 2)) for _ in range(4)]
        out = cl.comm().allreduce(bufs)
        assert np.array_equal(out, serial_sum(bufs))
        assert cl.stats.retries == 1
        assert cl.stats.corrupted_collectives == 1
        assert cl.stats.backoff_time > 0

    def test_rank_failure_is_recovered(self, make_cluster, rng):
        plan = FaultPlan(schedule=[ScheduledFault("rank_failure", 0, rank=2)])
        cl = make_cluster(4, fault_plan=plan)
        bufs = [rng.normal(size=6) for _ in range(4)]
        out = cl.comm().allreduce(bufs)
        assert np.array_equal(out, serial_sum(bufs))
        assert cl.stats.rank_failures == 1
        assert cl.stats.recovery_time > 0
        assert not cl.failed_ranks  # healed

    def test_straggler_delays_but_succeeds(self, make_cluster, rng):
        plan = FaultPlan(schedule=[ScheduledFault("straggler", 0, rank=1)])
        cl = make_cluster(4, fault_plan=plan)
        bufs = [rng.normal(size=4) for _ in range(4)]
        out = cl.comm().allreduce(bufs)
        assert np.array_equal(out, serial_sum(bufs))
        assert cl.stats.straggler_events == 1
        assert cl.stats.straggler_time > 0
        assert cl.stats.retries == 0

    def test_persistent_fault_times_out(self, make_cluster, rng):
        plan = FaultPlan(
            schedule=[ScheduledFault("message_corruption", 0, persistent=True)]
        )
        cl = make_cluster(4, fault_plan=plan)
        with pytest.raises(CollectiveTimeoutError) as exc:
            cl.comm().allreduce([rng.normal(size=3) for _ in range(4)])
        assert exc.value.site == "allreduce[0]"
        assert cl.stats.retries == cl.retry_policy.max_retries + 1

    def test_timeout_budget_cuts_retries_short(self, make_cluster, rng):
        plan = FaultPlan(
            schedule=[ScheduledFault("message_corruption", 0, persistent=True)]
        )
        policy = RetryPolicy(max_retries=10, base_backoff=1.0, timeout=2.0)
        cl = make_cluster(4, fault_plan=plan, retry_policy=policy)
        with pytest.raises(CollectiveTimeoutError):
            cl.comm().allreduce([rng.normal(size=3) for _ in range(4)])
        assert cl.stats.retries < 10

    def test_all_collectives_are_guarded(self, make_cluster, rng):
        plan = FaultPlan(rates=FaultRates(collective_error=0.4), seed=5)
        cl = make_cluster(4, fault_plan=plan)
        comm = cl.comm()
        bufs = [rng.normal(size=4) for _ in range(4)]
        comm.allreduce(bufs)
        comm.bcast(bufs[0])
        comm.gather(bufs)
        comm.barrier()
        assert cl._collective_seq == 4  # each call consulted the plan

    def test_shared_window_corruption_raises(self, make_cluster, rng):
        plan = FaultPlan(schedule=[ScheduledFault("shm_corruption", 0)])
        cl = make_cluster(8, fault_plan=plan)
        from repro.runtime import SharedWindow

        win = SharedWindow(cl, (4,))
        with pytest.raises(ShmCorruptionError):
            win.accumulate_chunked(0, [np.ones(4)] * 8)


class TestResilientReduction:
    def test_default_ladder_respects_capabilities(self):
        assert [s.name for s in default_ladder(HPC2_AMD)] == [
            "packed_hierarchical", "packed", "baseline",
        ]
        assert [s.name for s in default_ladder(HPC1_SUNWAY)] == [
            "packed", "baseline",
        ]

    def test_fault_free_uses_primary(self, make_cluster, rng):
        cl = make_cluster(8)
        rows = [rng.normal(size=(6, 3)) for _ in range(8)]
        out, rep = ResilientReduction().reduce(cl, rows)
        assert rep.scheme == "packed_hierarchical"
        assert np.allclose(out, np.sum(rows, axis=0), atol=1e-12)

    def test_packed_degrades_to_baseline_bit_exact(self, rng, make_cluster):
        plan = FaultPlan(
            schedule=[ScheduledFault("message_corruption", 1, persistent=True)]
        )
        cl = make_cluster(6, base=HPC1_SUNWAY, fault_plan=plan)
        rows = [rng.normal(size=(10, 3)) for _ in range(6)]
        out, rep = ResilientReduction(
            [PackedAllreduce(rows_cap=3), BaselineRowwiseAllreduce()]
        ).reduce(cl, rows)
        assert rep.scheme == "baseline"
        assert np.array_equal(out, serial_sum(rows))  # degradation changes no bits
        assert len(cl.stats.degradations) == 1
        assert cl.stats.degradations[0].startswith("packed->baseline")

    def test_hierarchical_degrades_on_shm_corruption(self, make_cluster, rng):
        plan = FaultPlan(schedule=[ScheduledFault("shm_corruption", 0)])
        cl = make_cluster(64, fault_plan=plan)
        rows = [rng.normal(size=(8, 3)) for _ in range(64)]
        out, rep = ResilientReduction().reduce(cl, rows)
        assert rep.scheme == "packed"
        assert np.array_equal(out, serial_sum(rows))
        assert cl.stats.degradations[0].startswith("packed_hierarchical->packed")

    def test_ladder_exhaustion_raises(self, make_cluster, rng):
        # Every collective is persistently corrupted: nothing can finish.
        schedule = [
            ScheduledFault("message_corruption", i, persistent=True)
            for i in range(64)
        ]
        cl = make_cluster(4, fault_plan=FaultPlan(schedule=schedule))
        rows = [rng.normal(size=(4, 2)) for _ in range(4)]
        with pytest.raises(CommunicationError, match="exhausted"):
            ResilientReduction(
                [PackedAllreduce(rows_cap=2), BaselineRowwiseAllreduce()]
            ).reduce(cl, rows)

    def test_estimate_delegates_to_primary(self):
        est = ResilientReduction().estimate(HPC2_AMD, 256, 1000, 13 * 1024)
        ref = PackedHierarchicalAllreduce().estimate(HPC2_AMD, 256, 1000, 13 * 1024)
        assert est.scheme == ref.scheme and est.total_time == ref.total_time


class TestDriverCheckpointRestart:
    def test_scf_restart_is_bit_exact(self, minimal_settings, h2_ground_state):
        plan = FaultPlan(
            schedule=[ScheduledFault("cycle_fault", 1, site="scf")]
        )
        injector = CycleFaultInjector(plan)
        gs = SCFDriver(hydrogen_molecule(), minimal_settings).run(
            fault_injector=injector
        )
        assert gs.restarts == 1
        assert gs.total_energy == h2_ground_state.total_energy
        assert np.array_equal(gs.density_matrix, h2_ground_state.density_matrix)
        assert gs.iterations == h2_ground_state.iterations

    def test_cpscf_restart_is_bit_exact(self, minimal_settings, h2_ground_state):
        reference = DFPTSolver(
            h2_ground_state, minimal_settings.cpscf
        ).solve_direction(2)
        plan = FaultPlan(
            schedule=[ScheduledFault("cycle_fault", 1, site="cpscf2")]
        )
        faulted = DFPTSolver(
            h2_ground_state,
            minimal_settings.cpscf,
            fault_injector=CycleFaultInjector(plan),
        ).solve_direction(2)
        assert faulted.restarts == 1
        assert faulted.iterations == reference.iterations
        assert np.array_equal(
            faulted.response_density_matrix, reference.response_density_matrix
        )

    def test_unsurvivable_cycle_raises(self, minimal_settings):
        plan = FaultPlan(
            schedule=[ScheduledFault("cycle_fault", 1, site="scf", persistent=True)]
        )
        injector = CycleFaultInjector(plan, max_restarts=2)
        with pytest.raises(FaultInjectionError, match="consecutive"):
            SCFDriver(hydrogen_molecule(), minimal_settings).run(
                fault_injector=injector
            )


class TestChaosHarness:
    def test_acceptance_criterion(self):
        """Fixed seed; >=1 rank failure + >=1 corrupted collective; the
        run completes, polarizability is bit-exact with the fault-free
        reference, and CommStats shows retries + the degradation path."""
        report = run_chaos(seed=2023)
        counts = report.event_counts()
        assert counts.get("rank_failure", 0) >= 1
        assert counts.get("message_corruption", 0) >= 1
        assert report.comm_stats.retries > 0
        assert report.comm_stats.rank_failures >= 1
        assert report.comm_stats.corrupted_collectives >= 1
        assert report.degradations  # the path taken is recorded
        assert report.scheme_used == "packed"
        assert report.reduction_bit_exact
        assert report.polarizability_bit_exact
        assert report.scf_restarts + report.cpscf_restarts > 0
        assert "bit-exact vs fault-free: YES" in report.summary()

    def test_chaos_is_deterministic(self):
        a = run_chaos(seed=11)
        b = run_chaos(seed=11)
        assert np.array_equal(a.polarizability, b.polarizability)
        assert a.comm_stats.retries == b.comm_stats.retries
        assert a.degradations == b.degradations
        assert [e.kind for e in a.fault_events] == [e.kind for e in b.fault_events]

    @pytest.mark.chaos
    @pytest.mark.parametrize("seed", range(20, 30))
    def test_randomized_seeds_recover_bit_exact(self, seed):
        report = run_chaos(seed=seed)
        assert report.polarizability_bit_exact
        assert report.reduction_max_abs_err < 1e-11


@pytest.mark.chaos
class TestChaosSweeps:
    """Long randomized sweeps (deselected by default; `make chaos`)."""

    def test_collectives_survive_random_fault_pressure(self, make_cluster):
        rates = FaultRates(
            message_corruption=0.15,
            message_drop=0.10,
            collective_error=0.10,
            straggler=0.15,
        )
        for seed in range(40):
            rng = np.random.default_rng(seed)
            cl = make_cluster(6, fault_plan=FaultPlan(seed=seed, rates=rates))
            bufs = [rng.normal(size=11) for _ in range(6)]
            try:
                out = cl.comm().allreduce(bufs)
            except CollectiveTimeoutError:
                continue  # a legal outcome under persistent bad luck
            assert np.array_equal(out, serial_sum(bufs))

    def test_resilient_reduction_under_random_faults(self, make_cluster):
        rates = FaultRates(
            rank_failure=0.05,
            message_corruption=0.10,
            straggler=0.10,
            shm_corruption=0.25,
        )
        for seed in range(25):
            rng = np.random.default_rng(1000 + seed)
            cl = make_cluster(
                64, fault_plan=FaultPlan(seed=seed, rates=rates, max_rank_failures=3)
            )
            rows = [rng.normal(size=(12, 4)) for _ in range(64)]
            out, rep = ResilientReduction().reduce(cl, rows)
            assert np.allclose(out, np.sum(rows, axis=0), atol=1e-11)
            if rep.scheme != "packed_hierarchical":
                assert cl.stats.degradations

"""Workload summaries, phase model and the PerturbationSimulator."""

import numpy as np
import pytest

from repro.atoms import polyethylene, water
from repro.config import get_settings
from repro.core import (
    OptimizationFlags,
    PerturbationSimulator,
    synthetic_batches,
)
from repro.core.workload import build_workload
from repro.errors import ExperimentError
from repro.runtime import HPC1_SUNWAY, HPC2_AMD


@pytest.fixture(scope="module")
def chain_sim():
    """602-atom chain simulator with batches prebuilt."""
    sim = PerturbationSimulator(polyethylene(100), get_settings("light"))
    _ = sim.batches
    return sim


class TestFlags:
    def test_all_and_none(self):
        assert OptimizationFlags.all().locality_mapping
        off = OptimizationFlags.none()
        assert not any(
            (
                off.locality_mapping,
                off.packed_comm,
                off.hierarchical_comm,
                off.kernel_fusion,
                off.indirect_elimination,
                off.loop_collapse,
            )
        )

    def test_but(self):
        f = OptimizationFlags.all().but(packed_comm=False)
        assert not f.packed_comm and f.locality_mapping


class TestWorkload:
    def test_quantities_anchor_to_structure(self):
        w = build_workload(polyethylene(10), get_settings("light"))
        assert w.n_atoms == 62
        assert w.n_basis == 20 * 11 + 42 * 5
        assert w.n_electrons == 20 * 6 + 42
        assert w.n_grid_points == int(w.points_per_atom.sum())
        assert w.rho_multipole_rows == 62
        assert w.rho_multipole_row_bytes > 0

    def test_synthetic_batches_conserve_points(self):
        w = build_workload(polyethylene(10), get_settings("light"))
        batches = synthetic_batches(w, target_points=200)
        assert sum(b.n_points for b in batches) == w.n_grid_points
        assert all(b.n_points <= 200 for b in batches)

    def test_synthetic_batches_single_owner(self):
        w = build_workload(polyethylene(5), get_settings("light"))
        for b in synthetic_batches(w, target_points=150):
            assert len(b.owner_atoms) == 1
            assert set(b.owner_atoms) <= set(b.relevant_atoms)


class TestRunModel:
    def test_report_structure(self, chain_sim):
        rep = chain_sim.run_model(HPC2_AMD, 8)
        assert set(rep.per_cycle_seconds) == {"DM", "Sumup", "Rho", "H", "Comm"}
        assert rep.cycle_seconds > 0
        assert rep.init_seconds > 0
        assert rep.memory_per_rank_bytes > 0
        assert rep.points_per_rank > 0

    def test_optimized_beats_baseline(self, chain_sim):
        for machine in (HPC1_SUNWAY, HPC2_AMD):
            t_opt = chain_sim.run_model(machine, 8).cycle_seconds
            t_base = chain_sim.run_model(
                machine, 8, OptimizationFlags.none()
            ).cycle_seconds
            assert t_opt < t_base

    def test_locality_cuts_memory(self, chain_sim):
        opt = chain_sim.run_model(HPC2_AMD, 16)
        base = chain_sim.run_model(HPC2_AMD, 16, OptimizationFlags.none())
        assert opt.memory_per_rank_bytes < base.memory_per_rank_bytes

    def test_more_ranks_shrink_cycle(self, chain_sim):
        t8 = chain_sim.run_model(HPC2_AMD, 8).cycle_seconds
        t32 = chain_sim.run_model(HPC2_AMD, 32).cycle_seconds
        assert t32 < t8

    def test_cpu_only_slower_than_gpu(self, chain_sim):
        gpu = chain_sim.run_model(HPC2_AMD, 16).cycle_seconds
        cpu = chain_sim.run_model(HPC2_AMD, 16, use_accelerator=False).cycle_seconds
        assert cpu > gpu

    def test_too_many_ranks_rejected(self, chain_sim):
        with pytest.raises(ExperimentError):
            chain_sim.run_model(HPC2_AMD, 10**6)

    def test_assignments_cached(self, chain_sim):
        a1 = chain_sim.assignment(8, True)
        a2 = chain_sim.assignment(8, True)
        assert a1 is a2


class TestRunPhysics:
    def test_water_end_to_end(self, minimal_settings):
        sim = PerturbationSimulator(water(), minimal_settings)
        result = sim.run_physics()
        assert result.ground_state.total_energy < -70.0
        alpha = result.polarizability
        assert np.allclose(alpha, alpha.T, atol=1e-3)
        assert np.linalg.eigvalsh(alpha).min() > 0
        assert set(result.phase_seconds) >= {"DM", "Sumup", "Rho", "H"}
        assert len(result.cpscf_iterations_per_direction) == 3

"""Radial grids, shell definitions and the structure-wide basis set."""

import numpy as np
import pytest

from repro.atoms import element, hydrogen_molecule, water
from repro.basis import (
    BasisSet,
    LogRadialGrid,
    RadialShell,
    build_basis,
    light_shells,
    radial_function,
)
from repro.basis.sets import CONFINE_CUT, confinement_window
from repro.errors import BasisError


class TestLogRadialGrid:
    def test_monotone_and_bounds(self):
        g = LogRadialGrid.make(1e-4, 20.0, 100)
        assert g.r[0] == pytest.approx(1e-4)
        assert g.r[-1] == pytest.approx(20.0)
        assert np.all(np.diff(g.r) > 0)

    def test_integrates_exponential(self):
        g = LogRadialGrid.make(1e-6, 40.0, 400)
        # int_0^inf e^-r dr = 1 (grid misses [0, r_min), tiny).
        val = g.integrate(np.exp(-g.r))
        assert val == pytest.approx(1.0, abs=1e-4)

    def test_cumulative_consistent_with_total(self):
        g = LogRadialGrid.make(1e-4, 10.0, 200)
        f = np.exp(-g.r) * g.r
        cum = g.cumulative_integral(f)
        assert cum[0] == 0.0
        assert cum[-1] == pytest.approx(g.integrate(f), rel=1e-10)

    def test_validation(self):
        with pytest.raises(ValueError):
            LogRadialGrid.make(0.0, 1.0, 10)
        with pytest.raises(ValueError):
            LogRadialGrid.make(1.0, 0.5, 10)
        with pytest.raises(ValueError):
            LogRadialGrid.make(1e-3, 1.0, 2)


class TestShells:
    def test_light_shell_counts_match_element_table(self):
        for sym in ("H", "C", "N", "O", "S"):
            shells = light_shells(sym)
            total = sum(s.n_functions for s in shells)
            assert total == element(sym).n_basis_light

    def test_unknown_species(self):
        with pytest.raises(BasisError):
            light_shells("Zz")

    def test_shell_validation(self):
        with pytest.raises(BasisError):
            RadialShell(1, 1, 1.0, "bad")  # l >= n
        with pytest.raises(BasisError):
            RadialShell(2, 0, -1.0, "bad")

    def test_confinement_window_shape(self):
        r = np.array([0.0, 5.0, 7.0, 8.0, 9.0, 12.0])
        w = confinement_window(r)
        assert w[0] == 1.0 and w[2] == 1.0
        assert 0.0 < w[3] < 1.0
        assert w[4] == pytest.approx(0.0, abs=1e-12)
        assert w[5] == pytest.approx(0.0, abs=1e-12)

    def test_radial_function_normalized(self):
        grid = LogRadialGrid.for_species(6, 320, r_max=12.0)
        for shell in light_shells("C"):
            spline, cutoff = radial_function(shell, grid)
            g = spline(grid.r)
            radial = g * grid.r**shell.l
            norm = grid.integrate(radial**2 * grid.r**2)
            assert norm == pytest.approx(1.0, rel=1e-6)
            assert 0 < cutoff <= CONFINE_CUT

    def test_radial_function_vanishes_beyond_cutoff(self):
        grid = LogRadialGrid.for_species(1, 320, r_max=12.0)
        spline, _ = radial_function(light_shells("H")[0], grid)
        assert abs(spline(CONFINE_CUT + 1.0)) < 1e-6


class TestBasisSet:
    def test_counts(self):
        b = build_basis(water())
        assert b.n_basis == 11 + 5 + 5
        assert list(b.functions_of_atom(0)) == list(range(11))
        assert b.n_functions_of_atoms([1, 2]) == 10

    def test_function_metadata(self):
        b = build_basis(hydrogen_molecule())
        f = b.functions[0]
        assert f.atom == 0 and f.l == 0 and f.m == 0

    def test_evaluate_screening_consistency(self, rng):
        b = build_basis(water())
        pts = rng.normal(size=(30, 3)) * 2.0
        full = b.evaluate(pts)
        only_o = b.evaluate(pts, atoms=[0])
        # Oxygen columns agree; H columns zero in screened result.
        assert np.allclose(full[:, :11], only_o[:, :11])
        assert np.allclose(only_o[:, 11:], 0.0)

    def test_values_vanish_beyond_cutoff(self):
        b = build_basis(hydrogen_molecule())
        far = np.array([[50.0, 0.0, 0.0]])
        assert np.allclose(b.evaluate(far), 0.0)

    def test_gradient_consistency(self, rng):
        b = build_basis(hydrogen_molecule())
        pts = rng.normal(size=(12, 3))
        v, g = b.evaluate_with_gradients(pts)
        assert np.allclose(v, b.evaluate(pts))
        eps = 1e-5
        for axis in range(3):
            dp, dm = pts.copy(), pts.copy()
            dp[:, axis] += eps
            dm[:, axis] -= eps
            fd = (b.evaluate(dp) - b.evaluate(dm)) / (2 * eps)
            assert np.allclose(g[:, :, axis], fd, atol=1e-7)

    def test_interaction_pairs_h2(self):
        b = build_basis(hydrogen_molecule())
        pairs = set(b.interaction_pairs())
        assert (0, 1) in pairs or (1, 0) in pairs

    def test_atom_cutoffs_positive(self):
        b = build_basis(water())
        assert np.all(b.atom_cutoffs > 0)

    def test_unsupported_level(self):
        with pytest.raises(BasisError):
            build_basis(water(), level="tight")

"""Task-mapping strategies (Alg. 1), memory model and spline counts."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.atoms import polyethylene, rbd_like_protein, water
from repro.config import get_settings
from repro.core.workload import build_workload, synthetic_batches
from repro.errors import MappingError
from repro.grids import attach_relevant_atoms, build_batches, build_grid
from repro.mapping import (
    HamiltonianMemoryModel,
    atom_basis_counts,
    atom_cutoffs_light,
    load_balancing_mapping,
    locality_enhancing_mapping,
    spline_counts_per_rank,
)


@pytest.fixture(scope="module")
def chain_batches():
    """Synthetic batches for a 602-atom polyethylene chain."""
    structure = polyethylene(100)
    workload = build_workload(structure, get_settings("light"))
    return structure, synthetic_batches(workload)


class TestStrategies:
    @pytest.mark.parametrize("n_ranks", [1, 2, 7, 16, 64])
    def test_both_strategies_partition_all_batches(self, chain_batches, n_ranks):
        _, batches = chain_batches
        for fn in (load_balancing_mapping, locality_enhancing_mapping):
            a = fn(batches, n_ranks)
            owned = [b for r in a.batches_of_rank for b in r]
            assert sorted(owned) == list(range(len(batches)))
            assert a.n_ranks == n_ranks

    @given(n_ranks=st.integers(1, 32))
    @settings(max_examples=15, deadline=None)
    def test_partition_property(self, chain_batches, n_ranks):
        _, batches = chain_batches
        a = locality_enhancing_mapping(batches, n_ranks)
        owned = sorted(b for r in a.batches_of_rank for b in r)
        assert owned == list(range(len(batches)))

    def test_load_balancing_is_balanced(self, chain_batches):
        _, batches = chain_batches
        a = load_balancing_mapping(batches, 16)
        assert a.imbalance(batches) < 1.1

    def test_locality_is_balanced(self, chain_batches):
        _, batches = chain_batches
        a = locality_enhancing_mapping(batches, 16)
        assert a.imbalance(batches) < 1.25

    def test_locality_reduces_atoms_per_rank(self, chain_batches):
        structure, batches = chain_batches
        a_ex = load_balancing_mapping(batches, 16)
        a_lo = locality_enhancing_mapping(batches, 16)
        ex_atoms = np.mean([len(s) for s in a_ex.atoms_per_rank(batches)])
        lo_atoms = np.mean([len(s) for s in a_lo.atoms_per_rank(batches)])
        assert lo_atoms < 0.5 * ex_atoms

    def test_locality_ranks_are_contiguous_along_chain(self, chain_batches):
        """Each rank's batch centroids should span a short chain segment."""
        structure, batches = chain_batches
        a = locality_enhancing_mapping(batches, 8)
        chain_length = structure.coords[:, 0].max() - structure.coords[:, 0].min()
        for owned in a.batches_of_rank:
            xs = [batches[b].centroid[0] for b in owned]
            assert max(xs) - min(xs) < 0.35 * chain_length

    def test_more_ranks_than_batches_rejected(self, chain_batches):
        _, batches = chain_batches
        with pytest.raises(MappingError):
            locality_enhancing_mapping(batches, len(batches) + 1)
        with pytest.raises(MappingError):
            load_balancing_mapping(batches, 0)


class TestMemoryModel:
    def test_per_atom_tables(self):
        w = water()
        cut = atom_cutoffs_light(w)
        counts = atom_basis_counts(w)
        assert cut.shape == (3,) and np.all(cut > 0)
        assert counts.tolist() == [11, 5, 5]

    def test_global_csr_constant_across_strategies(self, chain_batches):
        structure, batches = chain_batches
        model = HamiltonianMemoryModel(structure)
        a_ex = load_balancing_mapping(batches, 8)
        per_rank = model.per_rank_bytes(a_ex, batches)
        assert np.all(per_rank == per_rank[0])
        assert per_rank[0] == model.global_sparse_csr_bytes()

    def test_locality_memory_much_smaller_and_scales_down(self, chain_batches):
        structure, batches = chain_batches
        model = HamiltonianMemoryModel(structure)
        csr = model.global_sparse_csr_bytes()
        prev = None
        for p in (4, 8, 16):
            a = locality_enhancing_mapping(batches, p)
            dense = model.per_rank_bytes(a, batches)
            assert dense.mean() < csr
            if prev is not None:
                assert dense.mean() < prev
            prev = dense.mean()

    def test_nnz_at_least_diagonal_blocks(self):
        w = water()
        model = HamiltonianMemoryModel(w)
        diag = sum(int(c) ** 2 for c in atom_basis_counts(w))
        assert model.global_sparse_nnz() >= diag

    def test_dense_local_formula(self, chain_batches):
        structure, batches = chain_batches
        model = HamiltonianMemoryModel(structure)
        a = locality_enhancing_mapping(batches, 4)
        dense = model.dense_local_bytes(a, batches)
        atoms = a.atoms_per_rank(batches)
        counts = atom_basis_counts(structure)
        for r in range(4):
            n_loc = int(counts[np.asarray(list(atoms[r]), dtype=int)].sum())
            assert dense[r] == 8 * n_loc * n_loc


class TestSplineModel:
    def test_locality_reduces_spline_counts(self, chain_batches):
        structure, batches = chain_batches
        a_ex = load_balancing_mapping(batches, 16)
        a_lo = locality_enhancing_mapping(batches, 16)
        sp_ex = spline_counts_per_rank(a_ex, batches, structure)
        sp_lo = spline_counts_per_rank(a_lo, batches, structure)
        assert sp_lo.mean() < 0.5 * sp_ex.mean()

    def test_counts_bounded_by_atom_total(self, chain_batches):
        structure, batches = chain_batches
        a = load_balancing_mapping(batches, 4)
        sp = spline_counts_per_rank(a, batches, structure)
        assert np.all(sp <= structure.n_atoms)
        assert np.all(sp >= 1)

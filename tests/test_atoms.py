"""Element data, Structure geometry, builders and geometry.in I/O."""

import io
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.atoms import (
    ELEMENTS,
    Structure,
    element,
    hiv_ligand,
    hydrogen_molecule,
    methane,
    polyethylene,
    polyethylene_atom_count,
    polyethylene_units_for_atoms,
    rbd_like_protein,
    read_geometry_in,
    water,
    write_geometry_in,
)
from repro.constants import ANGSTROM_IN_BOHR
from repro.errors import GeometryError


class TestElement:
    def test_supported_species(self):
        assert set(ELEMENTS) == {"H", "C", "N", "O", "S"}

    def test_unknown_element_raises(self):
        with pytest.raises(GeometryError, match="unsupported element"):
            element("Xx")

    def test_valence_counts(self):
        assert element("H").n_valence == 1
        assert element("C").n_valence == 4
        assert element("O").n_valence == 6
        assert element("S").n_valence == 6

    def test_covalent_radii_ordering(self):
        # S > C > O > H in covalent radius.
        assert element("S").covalent_radius > element("C").covalent_radius
        assert element("C").covalent_radius > element("H").covalent_radius


class TestStructure:
    def test_basic_properties(self):
        w = water()
        assert w.n_atoms == 3
        assert w.n_electrons == 10
        assert w.symbols == ("O", "H", "H")

    def test_coords_read_only(self):
        w = water()
        with pytest.raises(ValueError):
            w.coords[0, 0] = 99.0

    def test_shape_validation(self):
        with pytest.raises(GeometryError):
            Structure(["H"], np.zeros((1, 2)))
        with pytest.raises(GeometryError):
            Structure(["H", "H"], np.zeros((1, 3)))
        with pytest.raises(GeometryError):
            Structure([], np.zeros((0, 3)))

    def test_distance_matrix_symmetric_zero_diagonal(self):
        d = water().distance_matrix()
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0.0)

    def test_oh_bond_length(self):
        w = water()
        assert w.distance(0, 1) == pytest.approx(0.9572 * ANGSTROM_IN_BOHR, rel=1e-6)

    def test_neighbors_within(self):
        w = water()
        assert set(w.neighbors_within(0, 3.0)) == {1, 2}
        assert w.neighbors_within(0, 0.1).size == 0

    def test_bonded_pairs_water(self):
        pairs = set(water().bonded_pairs())
        assert pairs == {(0, 1), (0, 2)}

    def test_translate_and_center(self):
        w = water().translated([1.0, 2.0, 3.0]).centered()
        assert np.allclose(w.centroid(), 0.0, atol=1e-12)

    def test_subset(self):
        w = water()
        sub = w.subset([0])
        assert sub.n_atoms == 1 and sub.symbols == ("O",)
        with pytest.raises(GeometryError):
            w.subset([])

    def test_bounding_box_padding(self):
        lo, hi = water().bounding_box(padding=2.0)
        lo2, hi2 = water().bounding_box()
        assert np.allclose(lo, lo2 - 2.0) and np.allclose(hi, hi2 + 2.0)


class TestBuilders:
    def test_h2_bond(self):
        h2 = hydrogen_molecule()
        assert h2.distance(0, 1) == pytest.approx(0.7414 * ANGSTROM_IN_BOHR, rel=1e-6)

    def test_methane_tetrahedral(self):
        ch4 = methane()
        d = [ch4.distance(0, i) for i in range(1, 5)]
        assert np.allclose(d, d[0])

    @given(n=st.integers(min_value=1, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_polyethylene_atom_count_formula(self, n):
        assert polyethylene(n).n_atoms == 6 * n + 2 == polyethylene_atom_count(n)

    def test_polyethylene_inverse(self):
        assert polyethylene_units_for_atoms(30002) == 5000
        with pytest.raises(GeometryError):
            polyethylene_units_for_atoms(30001)

    def test_polyethylene_bond_lengths(self):
        pe = polyethylene(4)
        cc = pe.distance(0, 1)
        assert cc == pytest.approx(1.54 * ANGSTROM_IN_BOHR, rel=1e-6)

    def test_polyethylene_no_atom_clashes(self):
        pe = polyethylene(20)
        d = pe.distance_matrix()
        np.fill_diagonal(d, np.inf)
        assert d.min() > 1.5  # Bohr

    def test_hiv_ligand_composition(self):
        lig = hiv_ligand()
        assert lig.n_atoms == 49
        from collections import Counter

        counts = Counter(lig.symbols)
        assert counts["C"] == 16 and counts["N"] == 3 and counts["O"] == 8

    def test_hiv_ligand_deterministic(self):
        assert np.allclose(hiv_ligand().coords, hiv_ligand().coords)

    def test_rbd_like_size_and_composition(self):
        rbd = rbd_like_protein(500, seed=7)
        assert rbd.n_atoms == 500
        assert {"H", "C", "N", "O"} <= set(rbd.symbols)

    def test_rbd_min_separation(self):
        rbd = rbd_like_protein(300, seed=3)
        d = rbd.distance_matrix()
        np.fill_diagonal(d, np.inf)
        assert d.min() > 1.0  # jittered lattice keeps atoms apart

    def test_rbd_default_is_paper_size(self):
        assert rbd_like_protein().n_atoms == 3006


class TestGeometryIO:
    def test_roundtrip(self):
        w = water()
        buf = io.StringIO()
        write_geometry_in(w, buf)
        buf.seek(0)
        back = read_geometry_in(buf)
        assert back.symbols == w.symbols
        assert np.allclose(back.coords, w.coords, atol=1e-9)

    def test_read_with_comments(self):
        text = "# comment\natom 0.0 0.0 0.0 O # inline\n\natom 1.0 0.0 0.0 H\n"
        s = read_geometry_in(io.StringIO(text))
        assert s.n_atoms == 2

    def test_rejects_periodic(self):
        with pytest.raises(GeometryError, match="periodic"):
            read_geometry_in(io.StringIO("lattice_vector 1 0 0\n"))

    def test_rejects_malformed(self):
        with pytest.raises(GeometryError):
            read_geometry_in(io.StringIO("atom 1.0 2.0 O\n"))
        with pytest.raises(GeometryError):
            read_geometry_in(io.StringIO("atom x y z O\n"))
        with pytest.raises(GeometryError):
            read_geometry_in(io.StringIO("banana 1 2 3 O\n"))
        with pytest.raises(GeometryError, match="no atoms"):
            read_geometry_in(io.StringIO("# empty\n"))

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "geometry.in"
        write_geometry_in(polyethylene(2), path)
        s = read_geometry_in(path)
        assert s.n_atoms == 14

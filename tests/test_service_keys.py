"""Hypothesis property tests for service cache-key stability.

The service result cache is only sound if its keys are (a) invariant
under representational noise — keyword ordering, equal-value
reconstruction, canonical-dict round trips — and (b) distinct under
*any* single physics-relevant change (a settings field, a coordinate,
the charge, the commit, the seed).
"""

from __future__ import annotations

import dataclasses
import random

from hypothesis import given, settings as hsettings, strategies as st

from repro.atoms import hydrogen_molecule, water
from repro.config import (
    CPSCFSettings,
    GridSettings,
    RunSettings,
    SCFSettings,
    get_settings,
)
from repro.service import JobRequest, cache_key, settings_fingerprint

COMMIT = "deadbee"

# Strategies for every top-level / nested RunSettings field.
_grid = st.builds(
    GridSettings,
    n_radial_base=st.integers(8, 48),
    n_angular=st.sampled_from([26, 50, 110]),
    radial_multiplier=st.floats(0.5, 2.0, allow_nan=False),
    batch_target_points=st.integers(32, 400),
    becke_smoothing=st.integers(1, 5),
)
_scf = st.builds(
    SCFSettings,
    max_iterations=st.integers(10, 100),
    density_tolerance=st.sampled_from([1e-5, 1e-6, 1e-7]),
    mixing_factor=st.floats(0.1, 0.9, allow_nan=False),
    pulay_history=st.integers(2, 10),
)
_cpscf = st.builds(
    CPSCFSettings,
    max_iterations=st.integers(10, 80),
    response_tolerance=st.sampled_from([1e-5, 1e-6]),
    mixing_factor=st.floats(0.1, 0.9, allow_nan=False),
)
_settings = st.builds(
    RunSettings,
    level=st.sampled_from(["minimal", "light", "tight"]),
    grids=_grid,
    scf=_scf,
    cpscf=_cpscf,
    l_max_hartree=st.integers(2, 8),
    backend=st.sampled_from(["numpy", "batched", "device"]),
    verify=st.sampled_from(["off", "cheap", "full"]),
    screening_threshold=st.sampled_from([0.0, 1e-8, 1e-6, 1e-4]),
)


@given(s=_settings)
@hsettings(max_examples=40, deadline=None)
def test_key_invariant_under_equal_value_reconstruction(s):
    """Two independently built but equal settings share one key."""
    clone = RunSettings(
        level=s.level, grids=GridSettings(**dataclasses.asdict(s.grids)),
        scf=SCFSettings(**dataclasses.asdict(s.scf)),
        cpscf=CPSCFSettings(**dataclasses.asdict(s.cpscf)),
        l_max_hartree=s.l_max_hartree, xc=s.xc, backend=s.backend,
        verify=s.verify, screening_threshold=s.screening_threshold,
    )
    mol = hydrogen_molecule()
    assert cache_key(mol, s, commit=COMMIT) == cache_key(mol, clone,
                                                         commit=COMMIT)


@given(s=_settings, seed=st.integers(0, 2**32 - 1))
@hsettings(max_examples=40, deadline=None)
def test_key_invariant_under_field_ordering(s, seed):
    """Constructing from shuffled kwargs cannot change the key."""
    fields = {f.name: getattr(s, f.name) for f in dataclasses.fields(s)}
    names = list(fields)
    random.Random(seed).shuffle(names)
    shuffled = RunSettings(**{name: fields[name] for name in names})
    assert settings_fingerprint(shuffled) == settings_fingerprint(s)


@given(s=_settings)
@hsettings(max_examples=40, deadline=None)
def test_key_invariant_under_canonical_round_trip(s):
    rebuilt = RunSettings.from_canonical_dict(s.as_canonical_dict())
    assert rebuilt == s
    assert settings_fingerprint(rebuilt) == settings_fingerprint(s)


@given(s=_settings, data=st.data())
@hsettings(max_examples=60, deadline=None)
def test_key_distinct_under_any_single_field_change(s, data):
    """Perturbing exactly one (possibly nested) field changes the key."""
    flat = {
        "level": st.sampled_from(["minimal", "light", "tight", "custom"]),
        "l_max_hartree": st.integers(2, 9),
        "backend": st.sampled_from(["numpy", "batched", "device"]),
        "verify": st.sampled_from(["off", "cheap", "full"]),
        "screening_threshold": st.sampled_from([0.0, 1e-8, 1e-6, 1e-4]),
        "xc": st.sampled_from(["lda", "pbe"]),
        "grids.n_radial_base": st.integers(8, 49),
        "grids.n_angular": st.sampled_from([26, 50, 110, 194]),
        "scf.max_iterations": st.integers(10, 101),
        "scf.mixing_factor": st.floats(0.1, 0.9, allow_nan=False),
        "cpscf.max_iterations": st.integers(10, 81),
    }
    path = data.draw(st.sampled_from(sorted(flat)), label="field")
    new_value = data.draw(flat[path], label="value")
    if "." in path:
        group, leaf = path.split(".")
        if getattr(getattr(s, group), leaf) == new_value:
            return  # same value drawn — nothing must change
        inner = dataclasses.replace(getattr(s, group), **{leaf: new_value})
        changed = dataclasses.replace(s, **{group: inner})
    else:
        if getattr(s, path) == new_value:
            return
        changed = dataclasses.replace(s, **{path: new_value})
    mol = hydrogen_molecule()
    assert cache_key(mol, changed, commit=COMMIT) != cache_key(mol, s,
                                                               commit=COMMIT)


@given(dz=st.floats(1e-6, 0.5, allow_nan=False))
@hsettings(max_examples=25, deadline=None)
def test_key_distinct_under_geometry_change(dz):
    s = get_settings("minimal")
    base = hydrogen_molecule()
    stretched = hydrogen_molecule(bond_length=base.coords[1, 2] * 2 + dz)
    assert cache_key(base, s, commit=COMMIT) != cache_key(stretched, s,
                                                          commit=COMMIT)


def test_key_distinct_across_molecules_charge_commit_and_seed():
    s = get_settings("minimal")
    h2, h2o = hydrogen_molecule(), water()
    base = cache_key(h2, s, commit=COMMIT)
    assert cache_key(h2o, s, commit=COMMIT) != base
    assert cache_key(h2, s, 1, commit=COMMIT) != base
    assert cache_key(h2, s, commit="0000000") != base
    assert cache_key(h2, s, commit=COMMIT, seed=7) != base


def test_job_request_key_matches_cache_key():
    s = get_settings("minimal")
    req = JobRequest("h2", s, charge=0)
    assert req.key(commit=COMMIT) == cache_key(hydrogen_molecule(), s,
                                               commit=COMMIT)


def test_key_is_stable_across_processes_shape():
    """Keys carry the ck- prefix and a fixed-length hex body."""
    key = cache_key(hydrogen_molecule(), get_settings("minimal"),
                    commit=COMMIT)
    assert key.startswith("ck-") and len(key) == 3 + 32
    int(key[3:], 16)  # hex body parses

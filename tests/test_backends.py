"""Execution-backend seam: bit-exact parity, LRU cache, profiles, registry.

The acceptance bar of the backend refactor is *bitwise* equality — not
``allclose`` — between the ``numpy``, ``batched`` and ``device``
backends for every phase operation, end to end through SCF and CPSCF.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.atoms import hydrogen_molecule, water
from repro.backends import (
    BackendProfile,
    BatchedBackend,
    BlockCache,
    DeviceBackend,
    NumpyBackend,
    available_backends,
    create_backend,
)
from repro.basis import build_basis
from repro.config import get_settings
from repro.dfpt.response import DFPTSolver
from repro.dft import SCFDriver, density_on_grid
from repro.dft.hamiltonian import MatrixBuilder
from repro.errors import BackendError, GridError
from repro.grids import build_batches, build_grid

ALL_BACKENDS = ("numpy", "batched", "device")


@pytest.fixture(scope="module", params=["h2", "water"])
def substrate(request, minimal_settings):
    """(basis, grid) for one molecule, built once per module."""
    structure = hydrogen_molecule() if request.param == "h2" else water()
    basis = build_basis(structure)
    grid = build_grid(structure, minimal_settings.grids, with_partition=True)
    return basis, grid


@pytest.fixture(scope="module")
def builders(substrate):
    """One MatrixBuilder per backend, sharing the same batch list."""
    basis, grid = substrate
    reference = MatrixBuilder(basis, grid, backend="numpy")
    out = {"numpy": reference}
    for name in ("batched", "device"):
        out[name] = MatrixBuilder(
            basis, grid, batches=reference.batches, backend=name
        )
    return out


class TestPhaseParity:
    """numpy / batched / device must agree to the last bit."""

    def test_overlap_bit_identical(self, builders):
        s_ref = builders["numpy"].overlap()
        for name in ("batched", "device"):
            assert np.array_equal(s_ref, builders[name].overlap()), name

    def test_kinetic_bit_identical(self, builders):
        t_ref = builders["numpy"].kinetic()
        for name in ("batched", "device"):
            assert np.array_equal(t_ref, builders[name].kinetic()), name

    def test_nuclear_attraction_bit_identical(self, builders):
        v_ref = builders["numpy"].nuclear_attraction()
        for name in ("batched", "device"):
            assert np.array_equal(v_ref, builders[name].nuclear_attraction()), name

    def test_potential_matrix_bit_identical(self, builders, rng):
        v = rng.normal(size=builders["numpy"].grid.n_points)
        m_ref = builders["numpy"].potential_matrix(v)
        for name in ("batched", "device"):
            assert np.array_equal(m_ref, builders[name].potential_matrix(v)), name

    def test_dipoles_bit_identical(self, builders):
        d_ref = builders["numpy"].dipole_matrices()
        for name in ("batched", "device"):
            assert np.array_equal(d_ref, builders[name].dipole_matrices()), name

    def test_density_bit_identical(self, builders, rng):
        nb = builders["numpy"].basis.n_basis
        p = rng.normal(size=(nb, nb))
        p = p + p.T
        n_ref = density_on_grid(builders["numpy"], p)
        for name in ("batched", "device"):
            assert np.array_equal(n_ref, density_on_grid(builders[name], p)), name

    def test_first_order_dm_bit_identical(self, builders, rng):
        nb = builders["numpy"].basis.n_basis
        n_occ = max(1, nb // 4)
        n_virt = nb - n_occ
        h1 = rng.normal(size=(nb, nb))
        h1 = h1 + h1.T
        c = rng.normal(size=(nb, nb))
        args = (
            h1,
            rng.normal(size=(n_virt, n_occ)),
            c[:, :n_occ],
            c[:, n_occ:],
            np.full(n_occ, 2.0),
        )
        ref = builders["numpy"].backend.first_order_dm(*args)
        for name in ("batched", "device"):
            out = builders[name].backend.first_order_dm(*args)
            for a, b in zip(ref, out):
                assert np.array_equal(a, b), name


class TestEndToEndParity:
    """Whole SCF + CPSCF trajectories must be bit-identical per backend."""

    @pytest.fixture(scope="class")
    def per_backend_runs(self, minimal_settings):
        out = {}
        for name in ALL_BACKENDS:
            gs = SCFDriver(hydrogen_molecule(), minimal_settings, backend=name).run()
            solver = DFPTSolver(gs, minimal_settings.cpscf)
            alpha = np.empty((3, 3))
            for j in range(3):
                alpha[:, j] = solver.solve_direction(j).polarizability_column(
                    gs.dipoles
                )
            out[name] = (gs, alpha)
        return out

    def test_total_energy_bit_identical(self, per_backend_runs):
        e_ref = per_backend_runs["numpy"][0].total_energy
        for name in ("batched", "device"):
            assert per_backend_runs[name][0].total_energy == e_ref, name

    def test_density_matrix_bit_identical(self, per_backend_runs):
        p_ref = per_backend_runs["numpy"][0].density_matrix
        for name in ("batched", "device"):
            assert np.array_equal(
                p_ref, per_backend_runs[name][0].density_matrix
            ), name

    def test_polarizability_bit_identical(self, per_backend_runs):
        a_ref = per_backend_runs["numpy"][1]
        for name in ("batched", "device"):
            assert np.array_equal(a_ref, per_backend_runs[name][1]), name

    def test_solver_inherits_ground_state_backend(self, minimal_settings):
        gs = SCFDriver(
            hydrogen_molecule(), minimal_settings, backend="batched"
        ).run()
        solver = DFPTSolver(gs, minimal_settings.cpscf)
        assert solver.backend is gs.builder.backend
        assert solver.backend.name == "batched"

    def test_settings_select_backend(self, minimal_settings):
        settings = get_settings("minimal", backend="batched")
        driver = SCFDriver(hydrogen_molecule(), settings)
        assert driver.backend.name == "batched"


class TestParityUnderBatchAndCacheVariation:
    @given(
        target_points=st.integers(min_value=16, max_value=200),
        cache_limit=st.sampled_from([0, 1_000, 10_000_000]),
        max_cache_bytes=st.sampled_from([0, 4096, 64 << 20]),
    )
    @hsettings(max_examples=10, deadline=None)
    def test_hypothesis_parity(self, target_points, cache_limit, max_cache_bytes):
        h2 = hydrogen_molecule()
        settings = get_settings("minimal")
        basis = build_basis(h2)
        grid = build_grid(h2, settings.grids, with_partition=True)
        batches = build_batches(grid, target_points=target_points)
        ref = MatrixBuilder(
            basis, grid, batches=batches, backend="numpy", cache_limit=cache_limit
        )
        streaming = MatrixBuilder(
            basis,
            grid,
            batches=ref.batches,
            backend=BatchedBackend(max_cache_bytes=max_cache_bytes),
            cache_limit=cache_limit,
        )
        rng = np.random.default_rng(target_points)
        v = rng.normal(size=grid.n_points)
        assert np.array_equal(ref.potential_matrix(v), streaming.potential_matrix(v))
        nb = basis.n_basis
        p = rng.normal(size=(nb, nb))
        p = p + p.T
        # Twice: the second pass exercises cache hits / thrash paths.
        for _ in range(2):
            assert np.array_equal(
                density_on_grid(ref, p), density_on_grid(streaming, p)
            )


class TestBlockCache:
    def _block(self, n_bytes):
        return np.zeros(n_bytes // 8)

    def test_hit_miss_counters(self):
        cache = BlockCache(max_bytes=1 << 20)
        assert cache.get(0) is None
        cache.put(0, self._block(800))
        assert cache.get(0) is not None
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_order(self):
        cache = BlockCache(max_bytes=2400)
        for k in range(3):
            cache.put(k, self._block(800))
        cache.get(0)  # refresh 0 -> LRU order is now 1, 2, 0
        cache.put(3, self._block(800))
        assert 1 not in cache and 0 in cache and 2 in cache and 3 in cache
        assert cache.evictions == 1

    def test_byte_bound_respected(self):
        cache = BlockCache(max_bytes=2000)
        for k in range(10):
            cache.put(k, self._block(800))
            assert cache.current_bytes <= 2000
        assert len(cache) == 2
        assert cache.peak_bytes <= 2000 + 800  # transiently one block over

    def test_oversized_block_survives_until_next_insert(self):
        cache = BlockCache(max_bytes=100)
        cache.put(0, self._block(800))
        assert 0 in cache  # the only block is never evicted by its own put
        cache.put(1, self._block(800))
        assert 0 not in cache and 1 in cache

    def test_reinsert_updates_bytes(self):
        cache = BlockCache(max_bytes=1 << 20)
        cache.put(0, self._block(800))
        cache.put(0, self._block(1600))
        assert cache.current_bytes == 1600

    def test_negative_budget_rejected(self):
        with pytest.raises(BackendError):
            BlockCache(max_bytes=-1)


class TestSharedCacheAcrossMolecules:
    """One BlockCache serving several molecules via scoped LRU keys."""

    def _builder(self, structure, settings, backend):
        return MatrixBuilder(
            build_basis(structure),
            build_grid(structure, settings.grids, with_partition=True),
            backend=backend,
        )

    def test_scoped_keys_stay_disjoint_and_bit_exact(self, minimal_settings):
        shared = BlockCache(max_bytes=64 << 20)
        builders = {}
        for scope, structure in (
            ("mol-a", hydrogen_molecule(bond_length=1.40)),
            ("mol-b", hydrogen_molecule(bond_length=1.60)),
        ):
            builders[scope] = self._builder(
                structure,
                minimal_settings,
                BatchedBackend(cache=shared, scope=scope),
            )
        outputs = {}
        for scope, builder in builders.items():
            nb = builder.basis.n_basis
            # Twice: the second pass must hit the shared cache under
            # this molecule's own scoped keys, never its neighbour's.
            outputs[scope] = [
                density_on_grid(builder, np.eye(nb)) for _ in range(2)
            ]
        for scope, builder in builders.items():
            private = self._builder(
                builder.grid.structure,
                minimal_settings,
                BatchedBackend(),
            )
            nb = private.basis.n_basis
            reference = density_on_grid(private, np.eye(nb))
            for pass_result in outputs[scope]:
                assert np.array_equal(pass_result, reference)

    def test_per_backend_counter_attribution(self, minimal_settings):
        """Shared-cache totals split exactly across the molecules'
        profiles (the fleet per-molecule attribution contract)."""
        shared = BlockCache(max_bytes=64 << 20)
        backends = {}
        for scope, bond in (("mol-a", 1.40), ("mol-b", 1.60)):
            backend = BatchedBackend(cache=shared, scope=scope)
            builder = self._builder(
                hydrogen_molecule(bond_length=bond), minimal_settings, backend
            )
            nb = builder.basis.n_basis
            for _ in range(2):
                density_on_grid(builder, np.eye(nb))
            backends[scope] = backend
        hits = sum(b.profile.cache_hits for b in backends.values())
        misses = sum(b.profile.cache_misses for b in backends.values())
        assert hits == shared.hits > 0
        assert misses == shared.misses > 0
        for backend in backends.values():
            assert backend.profile.cache_hits > 0
            assert backend.profile.cache_misses > 0


class TestBackendProfile:
    def test_phase_counters(self, minimal_settings):
        h2 = hydrogen_molecule()
        builder = MatrixBuilder(
            build_basis(h2),
            build_grid(h2, minimal_settings.grids, with_partition=True),
            backend="batched",
        )
        backend = builder.backend
        v = np.ones(builder.grid.n_points)
        builder.potential_matrix(v)
        nb = builder.basis.n_basis
        backend.density_on_grid(np.eye(nb))
        profile = backend.profile
        assert profile.phases["H"].calls == 1
        assert profile.phases["Sumup"].calls == 1
        expected = builder.grid.n_points * nb
        assert profile.phases["H"].elements == expected
        assert profile.phases["Sumup"].elements == expected
        assert profile.phases["H"].seconds >= 0.0
        # Second Sumup pass hits the block cache instead of re-evaluating.
        evaluations = profile.phases["basis"].calls
        backend.density_on_grid(np.eye(nb))
        assert profile.phases["basis"].calls == evaluations
        assert profile.cache_hits > 0
        assert profile.cache_peak_bytes <= profile.cache_max_bytes + (
            max(b.n_points for b in builder.batches) * nb * 8
        )

    def test_device_launch_accounting(self, minimal_settings):
        h2 = hydrogen_molecule()
        builder = MatrixBuilder(
            build_basis(h2),
            build_grid(h2, minimal_settings.grids, with_partition=True),
            backend="device",
        )
        backend = builder.backend
        assert backend.profile.device_bytes_transferred > 0  # staged tables
        builder.potential_matrix(np.ones(builder.grid.n_points))
        assert backend.profile.device_launches == 1
        assert backend.profile.device_modeled_seconds > 0.0

    def test_profile_as_dict_round_trip(self):
        profile = BackendProfile(backend="numpy")
        profile.record("H", elements=10, seconds=0.5)
        d = profile.as_dict()
        assert d["backend"] == "numpy"
        assert d["phases"]["H"] == {"calls": 1, "elements": 10, "seconds": 0.5}

    def test_format_backend_profile(self, minimal_settings):
        from repro.utils.reports import format_backend_profile

        h2 = hydrogen_molecule()
        builder = MatrixBuilder(
            build_basis(h2),
            build_grid(h2, minimal_settings.grids, with_partition=True),
            backend="batched",
        )
        builder.overlap()
        builder.overlap()
        text = format_backend_profile(builder.backend.profile)
        assert "backend profile [batched]" in text
        assert "H" in text and "block cache" in text


class TestRegistryAndValidation:
    def test_available_backends(self):
        assert set(ALL_BACKENDS) <= set(available_backends())

    def test_unknown_name_raises(self):
        with pytest.raises(BackendError, match="unknown execution backend"):
            create_backend("cuda")

    def test_unbound_use_raises(self):
        with pytest.raises(BackendError, match="not bound"):
            NumpyBackend().density_on_grid(np.eye(2))

    def test_rebinding_to_other_builder_raises(self, minimal_settings):
        h2 = hydrogen_molecule()
        basis = build_basis(h2)
        grid = build_grid(h2, minimal_settings.grids, with_partition=True)
        backend = BatchedBackend()
        first = MatrixBuilder(basis, grid, backend=backend)
        assert first.backend is backend
        with pytest.raises(BackendError, match="already bound"):
            MatrixBuilder(basis, grid, batches=first.batches, backend=backend)

    def test_instance_accepted_end_to_end(self, minimal_settings):
        backend = DeviceBackend()
        driver = SCFDriver(hydrogen_molecule(), minimal_settings, backend=backend)
        assert driver.backend is backend
        gs = driver.run()
        assert backend.profile.device_launches > 0
        assert gs.total_energy < -1.0

    def test_bad_spec_type_raises(self, minimal_settings):
        h2 = hydrogen_molecule()
        with pytest.raises(BackendError, match="name or ExecutionBackend"):
            MatrixBuilder(
                build_basis(h2),
                build_grid(h2, minimal_settings.grids, with_partition=True),
                backend=42,
            )

    def test_shape_validation(self, builders):
        backend = builders["numpy"].backend
        with pytest.raises(ValueError, match="density matrix shape"):
            backend.density_on_grid(np.eye(backend.builder.basis.n_basis + 1))
        with pytest.raises(GridError, match="potential samples"):
            backend.potential_matrix(np.ones(7))


class TestCacheLimitThrash:
    def test_basis_values_warns_once_over_limit(self, minimal_settings):
        h2 = hydrogen_molecule()
        builder = MatrixBuilder(
            build_basis(h2),
            build_grid(h2, minimal_settings.grids, with_partition=True),
            cache_limit=0,
        )
        assert not builder.table_cache_enabled
        with pytest.warns(RuntimeWarning, match="cache limit"):
            builder.basis_values()
        # Warned once per builder, not per call.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            builder.basis_values()

    def test_numpy_backend_streams_over_limit(self, minimal_settings):
        """Over the limit the reference backend must not rebuild the full
        table per call — it evaluates per batch (the profiled path)."""
        h2 = hydrogen_molecule()
        builder = MatrixBuilder(
            build_basis(h2),
            build_grid(h2, minimal_settings.grids, with_partition=True),
            cache_limit=0,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # basis_values() must not be hit
            builder.overlap()
        assert builder.backend.profile.phases["basis"].calls == len(builder.batches)

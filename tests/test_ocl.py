"""OpenCL device model: buffers, launches, transforms, fusion."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DeviceError, KernelFusionError
from repro.ocl import (
    AddressSpace,
    Device,
    DeviceBuffer,
    Kernel,
    NDRange,
    apply_gather_map,
    build_gather_map,
    collapse_kernel,
    collapse_pm_loop,
    eliminate_indirect_accesses,
    expand_pm_index,
    horizontal_fusion,
    vertical_fusion,
)
from repro.runtime import HPC1_SUNWAY, HPC2_AMD


@pytest.fixture
def sunway():
    return Device(HPC1_SUNWAY.accelerator)


@pytest.fixture
def mi50():
    return Device(HPC2_AMD.accelerator)


class TestNDRangeAndKernel:
    def test_ndrange_items(self):
        nd = NDRange(10, 64)
        assert nd.n_items == 640

    def test_ndrange_validation(self):
        with pytest.raises(DeviceError):
            NDRange(0, 1)

    def test_kernel_with_updates(self):
        k = Kernel("a", flops_per_item=10)
        k2 = k.with_updates(flops_per_item=20)
        assert k.flops_per_item == 10 and k2.flops_per_item == 20


class TestDevice:
    def test_launch_executes_real_function(self, mi50):
        data = DeviceBuffer("x", np.arange(8.0))
        mi50.to_device(data)
        k = Kernel("double", func=lambda bufs: bufs["x"].data.__imul__(2.0))
        mi50.launch(k, NDRange(1, 8), {"x": data})
        assert np.array_equal(data.data, np.arange(8.0) * 2)
        assert mi50.n_launches == 1

    def test_launch_rejects_host_buffers(self, mi50):
        data = DeviceBuffer("x", np.zeros(4))
        with pytest.raises(DeviceError, match="still on host"):
            mi50.launch(Kernel("k"), NDRange(1, 4), {"x": data})

    def test_transfer_accounting(self, mi50):
        buf = DeviceBuffer("x", np.zeros(1024))
        mi50.to_device(buf)
        assert buf.space is AddressSpace.GLOBAL
        assert mi50.bytes_transferred == 8192
        mi50.from_device(buf)
        assert mi50.bytes_transferred == 16384
        assert mi50.transfer_time > 0

    def test_persistent_requires_support(self, sunway):
        buf = DeviceBuffer("x", np.zeros(4))
        with pytest.raises(DeviceError):
            sunway.to_device(buf, persistent=True)

    def test_local_memory_capacity_checked(self, mi50):
        k = Kernel("big", local_bytes=10**9)
        with pytest.raises(DeviceError, match="__local"):
            mi50.estimate(k, NDRange(1, 64))

    def test_cost_scales_with_items(self, mi50):
        k = Kernel("k", flops_per_item=1000, bytes_read_per_item=64)
        t1 = mi50.estimate(k, NDRange(10, 64)).total_time
        t2 = mi50.estimate(k, NDRange(100, 64)).total_time
        assert t2 > t1

    def test_limited_width_slower(self, mi50):
        full = Kernel("k", flops_per_item=1e5)
        narrow = full.with_updates(parallel_width=8)
        nd = NDRange(64, 64)
        assert mi50.estimate(narrow, nd).compute_time > mi50.estimate(full, nd).compute_time

    def test_rma_window(self, sunway, mi50):
        assert sunway.rma_supported(28 * 1024)
        assert not sunway.rma_supported(498 * 1024)
        assert not mi50.rma_supported(1024)  # GPUs have no RMA mechanism

    def test_reset_counters(self, mi50):
        mi50.to_device(DeviceBuffer("x", np.zeros(4)))
        mi50.reset_counters()
        assert mi50.bytes_transferred == 0 and mi50.n_launches == 0


class TestCollapseTransform:
    @given(p_max=st.integers(0, 12))
    @settings(max_examples=20, deadline=None)
    def test_bijection_with_original_nest(self, p_max):
        """Collapsed enumeration == the original (p, m in [-p, p]) nest."""
        table = collapse_pm_loop(p_max)
        expected = [(p, m) for p in range(p_max + 1) for m in range(-p, p + 1)]
        assert [tuple(r) for r in table] == expected

    @given(p=st.integers(0, 12))
    @settings(max_examples=20, deadline=None)
    def test_expand_inverts_collapse(self, p):
        for m in range(-p, p + 1):
            idx = expand_pm_index(p, m)
            table = collapse_pm_loop(p)
            assert tuple(table[idx]) == (p, m)

    def test_expand_validation(self):
        with pytest.raises(DeviceError):
            expand_pm_index(1, 2)

    def test_collapse_kernel_widens(self):
        k = Kernel("am", flops_per_item=10, parallel_width=10)
        kc = collapse_kernel(k, 9)
        assert kc.parallel_width == 100

    def test_collapse_requires_limited_width(self):
        with pytest.raises(DeviceError):
            collapse_kernel(Kernel("k"), 9)


class TestGatherMap:
    def test_matches_indirect_access(self, rng):
        a = rng.normal(size=(50, 3))
        b = rng.integers(0, 50, size=120)
        c = build_gather_map(a, b)
        i = rng.integers(0, 120, size=30)
        assert np.array_equal(apply_gather_map(c, i), a[b][i])

    def test_bounds_checked(self):
        with pytest.raises(DeviceError):
            build_gather_map(np.zeros(5), np.array([5]))
        with pytest.raises(DeviceError):
            build_gather_map(np.zeros(5), np.zeros((2, 2), dtype=int))

    def test_eliminate_updates_kernel_model(self):
        k = Kernel("init", indirect_accesses_per_item=4, bytes_read_per_item=48)
        kd = eliminate_indirect_accesses(k)
        assert kd.indirect_accesses_per_item == 0
        assert kd.bytes_read_per_item > k.bytes_read_per_item

    def test_eliminate_requires_indirect(self):
        with pytest.raises(DeviceError):
            eliminate_indirect_accesses(Kernel("k"))


class TestFusion:
    def _kernels(self):
        prod = Kernel("prod", flops_per_item=1e5, bytes_written_per_item=32)
        cons = Kernel("cons", flops_per_item=1e4, bytes_read_per_item=64)
        return prod, cons

    def test_vertical_applies_within_rma(self, sunway):
        prod, cons = self._kernels()
        rep = vertical_fusion(sunway, prod, NDRange(8, 49), cons, NDRange(32, 200), 28 * 1024)
        assert rep.applied and rep.speedup > 1.0

    def test_vertical_refused_beyond_rma(self, sunway):
        prod, cons = self._kernels()
        rep = vertical_fusion(sunway, prod, NDRange(8, 49), cons, NDRange(32, 200), 498 * 1024)
        assert not rep.applied
        assert rep.speedup == pytest.approx(1.0)
        assert "RMA" in rep.reason

    def test_vertical_refused_without_rma(self, mi50):
        prod, cons = self._kernels()
        rep = vertical_fusion(mi50, prod, NDRange(8, 49), cons, NDRange(32, 200), 1024)
        assert not rep.applied

    def test_horizontal_applies_on_gpu(self, mi50):
        prod, cons = self._kernels()
        rep = horizontal_fusion(
            mi50, prod, NDRange(8, 49), cons, NDRange(32, 200), 498 * 1024, group_size=8
        )
        assert rep.applied and rep.speedup > 1.0

    def test_horizontal_refused_without_persistence(self, sunway):
        prod, cons = self._kernels()
        rep = horizontal_fusion(
            sunway, prod, NDRange(8, 49), cons, NDRange(32, 200), 1024, group_size=8
        )
        assert not rep.applied

    def test_horizontal_gain_grows_when_producer_dominates(self, mi50):
        prod = Kernel("prod", flops_per_item=1e6)
        cons = Kernel("cons", flops_per_item=1e3)
        small_cons = horizontal_fusion(
            mi50, prod, NDRange(64, 49), cons, NDRange(4, 64), 1024, group_size=8
        )
        big_cons = horizontal_fusion(
            mi50, prod, NDRange(64, 49), cons, NDRange(4096, 64), 1024, group_size=8
        )
        assert small_cons.speedup > big_cons.speedup

    def test_validation(self, mi50):
        prod, cons = self._kernels()
        with pytest.raises(KernelFusionError):
            vertical_fusion(mi50, prod, NDRange(1, 1), cons, NDRange(1, 1), 0)
        with pytest.raises(KernelFusionError):
            horizontal_fusion(mi50, prod, NDRange(1, 1), cons, NDRange(1, 1), 8, group_size=0)

"""Chrome trace-event export: round-trip validity, track mapping, CLI."""

import json
from collections import defaultdict

from repro.cli import main as cli_main
from repro.obs import Tracer, chrome_trace, write_chrome_trace
from repro.obs.export import MEASURED_PID, MODELED_PID, cycle_trace_events
from repro.runtime import trace_cycle


def _make_tracer() -> Tracer:
    t = Tracer()
    with t.span("density", category="phase"):
        with t.span("Sumup", category="backend", rank=0):
            pass
    with t.span("allreduce", category="comm", rank=1):
        pass
    t.event("cycle_fault", category="fault", rank=1, site="scf[2]")
    return t


class TestChromeTrace:
    def test_document_shape_and_round_trip(self, tmp_path):
        t = _make_tracer()
        path = write_chrome_trace(
            tmp_path / "trace.json", t.spans, metadata={"commit": "abc"}
        )
        doc = json.loads(path.read_text())  # must be valid JSON
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"] == {"commit": "abc"}
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] != "M"}
        assert names == {"density", "Sumup", "allreduce", "cycle_fault"}

    def test_timestamps_non_negative_and_monotonic_per_track(self):
        doc = chrome_trace(_make_tracer().spans)
        per_track = defaultdict(list)
        for e in doc["traceEvents"]:
            if e["ph"] == "M":
                continue
            assert e["ts"] >= 0.0
            if e["ph"] == "X":
                assert e["dur"] >= 0.0
            per_track[(e["pid"], e["tid"])].append(e["ts"])
        for ts in per_track.values():
            assert ts == sorted(ts)

    def test_rank_attribute_maps_to_tid(self):
        doc = chrome_trace(_make_tracer().spans)
        events = {
            e["name"]: e for e in doc["traceEvents"] if e["ph"] not in ("M",)
        }
        assert events["density"]["tid"] == 0  # no rank attr -> rank 0
        assert events["allreduce"]["tid"] == 1
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {m["args"]["name"] for m in metas} == {"rank 0", "rank 1"}

    def test_instant_events_use_instant_phase(self):
        doc = chrome_trace(_make_tracer().spans)
        fault = next(e for e in doc["traceEvents"] if e["name"] == "cycle_fault")
        assert fault["ph"] == "i" and fault["s"] == "t"
        assert fault["args"]["site"] == "scf[2]"

    def test_modeled_cycle_trace_synthesis(self):
        ct = trace_cycle(
            {"DM": 1.0, "Sumup": 2.0, "Comm": 0.5}, points_per_rank=[100, 50]
        )
        events = cycle_trace_events(ct)
        metas = [e for e in events if e["ph"] == "M"]
        assert len(metas) == ct.n_ranks
        slices = [e for e in events if e["ph"] == "X"]
        assert all(e["pid"] == MODELED_PID for e in slices)
        assert {e["tid"] for e in slices} == {0, 1}
        assert all(e["dur"] > 0.0 for e in slices)  # zero-width dropped

    def test_measured_and_modeled_share_one_document(self):
        ct = trace_cycle({"DM": 1.0}, points_per_rank=[10])
        doc = chrome_trace(_make_tracer().spans, cycle_traces=[ct])
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {MEASURED_PID, MODELED_PID}


class TestTraceCLI:
    def test_repro_trace_emits_consistent_artifacts(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        report_path = tmp_path / "report.json"
        rc = cli_main(
            [
                "trace",
                "--molecule", "h2",
                "--level", "minimal",
                "--out", str(trace_path),
                "--report", str(report_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "open in Perfetto" in out

        doc = json.loads(trace_path.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] != "M"}
        # Driver phases and backend/comm instrumentation all present.
        assert {"density", "hamiltonian", "Sumup", "H"} <= names
        assert doc["otherData"]["commit"]  # provenance rides along

        report = json.loads(report_path.read_text())
        # Acceptance criterion: phase spans sum to within 5% of the
        # reported per-phase wall time.
        spans_wall = report["trace"]["phase_wall_seconds"]
        reported = report["wall_seconds"]
        assert reported > 0.0
        assert abs(spans_wall - reported) / reported < 0.05

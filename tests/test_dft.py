"""DFT substrate: xc, Hartree solver, matrix builder, mixing, SCF."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.atoms import hydrogen_molecule, water
from repro.basis import build_basis
from repro.config import get_settings
from repro.dft import (
    MatrixBuilder,
    MultipoleSolver,
    PulayMixer,
    SCFDriver,
    density_on_grid,
    lda_exchange_correlation,
    lda_xc_kernel,
)
from repro.dft.hartree import adams_moulton_cumulative
from repro.dft.mixing import linear_mix
from repro.errors import SCFConvergenceError
from repro.grids import build_grid
from repro.utils.linalg import density_matrix_from_orbitals


class TestXC:
    def test_exchange_known_value(self):
        # For n=1: ex = -(3/4)(3/pi)^(1/3).
        res = lda_exchange_correlation(np.array([1.0]))
        ex_expected = -(3.0 / 4.0) * (3.0 / np.pi) ** (1.0 / 3.0)
        assert res.exc[0] < ex_expected  # correlation adds negative energy
        assert res.exc[0] == pytest.approx(ex_expected, abs=0.1)

    def test_vxc_is_derivative_of_n_exc(self):
        n = np.linspace(0.01, 2.0, 50)
        res = lda_exchange_correlation(n)
        h = 1e-6 * n
        e_plus = lda_exchange_correlation(n + h).exc * (n + h)
        e_minus = lda_exchange_correlation(n - h).exc * (n - h)
        fd = (e_plus - e_minus) / (2 * h)
        assert np.allclose(res.vxc, fd, rtol=1e-5)

    def test_fxc_is_derivative_of_vxc(self):
        n = np.linspace(0.05, 1.0, 20)
        fxc = lda_xc_kernel(n)
        h = 1e-5 * n
        fd = (
            lda_exchange_correlation(n + h).vxc - lda_exchange_correlation(n - h).vxc
        ) / (2 * h)
        assert np.allclose(fxc, fd, rtol=1e-3)

    def test_zero_density_safe(self):
        res = lda_exchange_correlation(np.array([0.0, 1e-30]))
        assert np.all(res.exc == 0.0) and np.all(res.vxc == 0.0)
        assert np.all(lda_xc_kernel(np.array([0.0])) == 0.0)

    @given(n=st.floats(1e-8, 1e3))
    @settings(max_examples=50, deadline=None)
    def test_xc_quantities_negative_for_positive_density(self, n):
        res = lda_exchange_correlation(np.array([n]))
        assert res.exc[0] < 0.0 and res.vxc[0] < 0.0


class TestAdamsMoulton:
    def test_integrates_polynomial_exactly(self):
        # AM4 is exact for cubics on uniform meshes.
        x = np.linspace(0.0, 2.0, 41)
        f = 3 * x**2
        out = adams_moulton_cumulative(f, np.full_like(x, x[1] - x[0]))
        assert np.allclose(out, x**3, atol=1e-10)

    def test_converges_on_smooth_integrand(self):
        x = np.linspace(0.0, np.pi, 201)
        out = adams_moulton_cumulative(np.sin(x), np.full_like(x, x[1] - x[0]))
        assert np.allclose(out, 1.0 - np.cos(x), atol=1e-8)

    def test_vector_channels(self):
        x = np.linspace(0, 1, 21)
        f = np.stack([x, x**2], axis=1)
        out = adams_moulton_cumulative(f, np.full_like(x, x[1] - x[0]))
        assert np.allclose(out[-1], [0.5, 1.0 / 3.0], atol=1e-10)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            adams_moulton_cumulative(np.zeros(5), np.zeros(4))


class TestMultipoleSolver:
    def test_hartree_energy_of_gaussian(self, minimal_settings):
        """v_H of a normalized Gaussian: E_H = (1/2) int n v = sqrt(2/pi)/2 /sigma..."""
        h2 = hydrogen_molecule()
        grid = build_grid(h2, minimal_settings.grids, with_partition=True)
        solver = MultipoleSolver(grid, l_max=4)
        # Unit-charge Gaussian at the molecular centre.
        alpha = 0.8
        n = (alpha / np.pi) ** 1.5 * np.exp(
            -alpha * (grid.points**2).sum(axis=1)
        )
        v = solver.hartree_potential(n)
        e_h = 0.5 * float(np.sum(grid.weights * n * v))
        exact = np.sqrt(alpha / (2.0 * np.pi))  # self-energy of Gaussian
        assert e_h == pytest.approx(exact, rel=2e-2)

    def test_far_field_is_coulombic(self, minimal_settings):
        h2 = hydrogen_molecule()
        grid = build_grid(h2, minimal_settings.grids, with_partition=True)
        solver = MultipoleSolver(grid, l_max=4)
        alpha = 1.2
        n = (alpha / np.pi) ** 1.5 * np.exp(-alpha * (grid.points**2).sum(axis=1))
        charge = float(np.sum(grid.weights * n))
        expansion = solver.solve(solver.expand(n))
        far = np.array([[25.0, 3.0, -4.0]])
        v = solver.evaluate(expansion, points=far)
        r = np.linalg.norm(far[0])
        assert v[0] == pytest.approx(charge / r, rel=2e-2)

    def test_expansion_nbytes_accounting(self, minimal_settings):
        grid = build_grid(water(), minimal_settings.grids, with_partition=True)
        solver = MultipoleSolver(grid, l_max=4)
        exp = solver.solve(solver.expand(np.ones(grid.n_points)))
        assert exp.rho_multipole_nbytes > 0
        assert exp.potential_spline_nbytes > 0


class TestMatrixBuilder:
    def test_overlap_properties(self, minimal_settings):
        h2 = hydrogen_molecule()
        basis = build_basis(h2)
        grid = build_grid(h2, minimal_settings.grids, with_partition=True)
        builder = MatrixBuilder(basis, grid)
        s = builder.overlap()
        assert np.allclose(s, s.T)
        # Normalized basis; minimal-grid quadrature is ~2% accurate.
        assert np.allclose(np.diag(s), 1.0, atol=5e-2)
        evals = np.linalg.eigvalsh(s)
        assert evals.min() > -1e-10  # PSD

    def test_kinetic_positive_definite(self, minimal_settings):
        h2 = hydrogen_molecule()
        builder = MatrixBuilder(
            build_basis(h2), build_grid(h2, minimal_settings.grids, with_partition=True)
        )
        t = builder.kinetic()
        assert np.linalg.eigvalsh(t).min() > 0.0

    def test_potential_matrix_of_constant_is_overlap(self, minimal_settings):
        h2 = hydrogen_molecule()
        builder = MatrixBuilder(
            build_basis(h2), build_grid(h2, minimal_settings.grids, with_partition=True)
        )
        v = builder.potential_matrix(np.full(builder.grid.n_points, 2.5))
        assert np.allclose(v, 2.5 * builder.overlap(), atol=1e-12)

    def test_density_integrates_to_electrons(self, h2_ground_state):
        gs = h2_ground_state
        n = density_on_grid(gs.builder, gs.density_matrix)
        assert gs.grid.integrate(n) == pytest.approx(2.0, abs=1e-6)

    def test_density_nonnegative(self, h2_ground_state):
        gs = h2_ground_state
        n = density_on_grid(gs.builder, gs.density_matrix)
        assert n.min() > -1e-10


class TestMixing:
    def test_linear_mix(self):
        out = linear_mix(np.zeros(3), np.ones(3), 0.25)
        assert np.allclose(out, 0.25)
        with pytest.raises(ValueError):
            linear_mix(np.zeros(3), np.ones(3), 0.0)

    def test_diis_solves_linear_fixed_point_fast(self):
        """DIIS on x -> Ax + b converges far faster than plain iteration."""
        rng = np.random.default_rng(0)
        a = 0.6 * rng.normal(size=(8, 8))
        a = a / np.abs(np.linalg.eigvals(a)).max() * 0.9
        b = rng.normal(size=8)
        x_star = np.linalg.solve(np.eye(8) - a, b)

        mixer = PulayMixer(history=8, linear_factor=0.5)
        x = np.zeros(8)
        for _ in range(25):
            residual = a @ x + b - x
            x = mixer.push(x + residual, residual)
        assert np.linalg.norm(x - x_star) < 1e-6

    def test_history_validation(self):
        with pytest.raises(ValueError):
            PulayMixer(history=1)
        with pytest.raises(ValueError):
            PulayMixer(linear_factor=1.5)

    def test_reset(self):
        m = PulayMixer()
        m.push(np.ones(3), np.ones(3))
        m.reset()
        assert m.push(np.zeros(3), np.zeros(3)) is not None


class TestSCF:
    def test_h2_energy_reasonable(self, h2_ground_state):
        # LDA H2 ~ -1.14 Ha; minimal basis/grid lands nearby.
        assert -1.25 < h2_ground_state.total_energy < -1.0

    def test_h2_symmetric_dipole_zero(self, h2_ground_state):
        assert np.allclose(h2_ground_state.dipole_moment(), 0.0, atol=1e-8)

    def test_water_energy_and_dipole(self, water_ground_state):
        gs = water_ground_state
        assert -77.0 < gs.total_energy < -74.0
        mu = gs.dipole_moment()
        assert mu[2] > 0.1  # along the C2v axis
        assert abs(mu[0]) < 1e-6 and abs(mu[1]) < 1e-6

    def test_occupations_and_homo_lumo(self, water_ground_state):
        gs = water_ground_state
        assert gs.n_occupied == 5
        assert gs.occupations[:5].sum() == pytest.approx(10.0)
        homo, lumo = gs.eigenvalues[4], gs.eigenvalues[5]
        assert homo < lumo < 0.5

    def test_energy_components_sum(self, water_ground_state):
        gs = water_ground_state
        total = sum(gs.energy_components.values())
        assert total == pytest.approx(gs.total_energy, abs=1e-8)

    def test_odd_electron_count_rejected(self, minimal_settings):
        with pytest.raises(SCFConvergenceError, match="even electron count"):
            SCFDriver(water(), minimal_settings, charge=1)

    def test_convergence_failure_raises(self, minimal_settings):
        settings = minimal_settings.with_scf(max_iterations=1)
        with pytest.raises(SCFConvergenceError):
            SCFDriver(water(), settings).run()

    def test_field_lowers_symmetry(self, minimal_settings):
        driver = SCFDriver(hydrogen_molecule(), minimal_settings)
        gs = driver.run(external_field=np.array([0.0, 0.0, 1e-2]))
        assert abs(gs.dipole_moment()[2]) > 1e-3

"""Auto-tuner contract: determinism, never-slower, round trips, gating.

The properties pinned here are the ones ``make tune-check`` exists for:

* same workload fingerprint + same history ⇒ byte-identical
  :class:`~repro.tune.decision.TunerDecision` (hypothesis-driven);
* the chosen configuration is never predicted *or* measured slower
  than the hand-picked default;
* decisions round-trip exactly through ``as_dict``/``from_dict``, the
  RunReport ``tuner`` block and the ``BENCH_history.jsonl`` lineage
  (where the next run warm-starts from them);
* a perturbed cost model trips the regression gate on the tuner's own
  ``modeled_seconds`` metrics — the gate provably notices the tuner.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.atoms import hydrogen_molecule, water
from repro.config import RunSettings, get_settings
from repro.errors import ServiceError
from repro.tune import (
    DEFAULT_COST_MODEL,
    TunedConfig,
    TunerDecision,
    TuningError,
    WavePlanner,
    append_decision,
    default_config,
    search_space,
    tune,
    tuned_settings,
    warm_start_configs,
    workload_fingerprint,
)

MINIMAL = get_settings("minimal")

# Tuner-owned knob variants: all must map to one workload fingerprint.
_tuned_knobs = st.builds(
    lambda backend, screening, cache, batch: get_settings(
        "minimal", backend=backend, screening_threshold=screening,
        cache_limit=cache,
    ).with_grids(batch_target_points=batch),
    backend=st.sampled_from(["numpy", "batched", "device"]),
    screening=st.sampled_from([0.0, 1e-6]),
    cache=st.sampled_from([None, 0]),
    batch=st.sampled_from([64, 100, 300]),
)


# ----------------------------------------------------------------------
# Search space and configs
# ----------------------------------------------------------------------

def test_config_round_trips_and_space_is_canonical():
    space = search_space(MINIMAL)
    assert space == sorted(space, key=TunedConfig.sort_key)
    assert len(space) == len(set(space))
    assert default_config(MINIMAL) in space
    for cfg in space[:10]:
        assert TunedConfig.from_dict(cfg.as_dict()) == cfg


def test_fleet_axis_only_present_when_requested():
    assert {c.fleet_wave for c in search_space(MINIMAL)} == {1}
    assert {c.fleet_wave for c in search_space(MINIMAL, fleet=True)} == {
        1, 2, 4, 8,
    }


def test_apply_rewrites_only_tuner_owned_knobs():
    cfg = TunedConfig(
        backend="batched", batch_target_points=100,
        cache_limit=0, screening_threshold=1e-6,
    )
    applied = cfg.apply(MINIMAL.with_tuning(mode="auto"))
    assert applied.backend == "batched"
    assert applied.grids.batch_target_points == 100
    assert applied.cache_limit == 0
    assert applied.screening_threshold == 1e-6
    assert applied.tuning.mode == "off"
    assert applied.scf == MINIMAL.scf and applied.cpscf == MINIMAL.cpscf


def test_tuned_run_cache_key_equals_hand_picked_key():
    """A tuned run dedups onto the identical hand-picked config."""
    from repro.service import cache_key

    cfg = TunedConfig(backend="batched", batch_target_points=100)
    applied = cfg.apply(MINIMAL.with_tuning(mode="auto", budget=7))
    hand_picked = get_settings(
        "minimal", backend="batched"
    ).with_grids(batch_target_points=100)
    key = lambda s: cache_key(water(), s, 0, commit="c", seed=1)  # noqa: E731
    assert key(applied) == key(hand_picked)


# ----------------------------------------------------------------------
# Workload fingerprint
# ----------------------------------------------------------------------

@given(s=_tuned_knobs)
@hsettings(max_examples=20, deadline=None)
def test_fingerprint_invariant_under_tuner_owned_knobs(s):
    """One workload, one fingerprint — whatever knobs it arrives with."""
    assert workload_fingerprint(water(), s) == workload_fingerprint(
        water(), MINIMAL
    )


def test_fingerprint_distinct_under_physics_changes():
    base = workload_fingerprint(water(), MINIMAL)
    assert workload_fingerprint(hydrogen_molecule(), MINIMAL) != base
    assert workload_fingerprint(water(), get_settings("light")) != base
    assert workload_fingerprint(water(), MINIMAL, charge=1) != base
    assert (
        workload_fingerprint(water(), MINIMAL.with_scf(max_iterations=7))
        != base
    )


# ----------------------------------------------------------------------
# Decision determinism and the never-slower guarantee
# ----------------------------------------------------------------------

@given(s=_tuned_knobs, ranks=st.sampled_from([2, 4, 8]))
@hsettings(max_examples=10, deadline=None)
def test_model_only_decision_is_byte_identical_and_never_slower(s, ranks):
    """Same inputs ⇒ same bytes; chosen never predicted slower."""
    a = tune(water(), s, n_ranks=ranks, budget=0)
    b = tune(water(), s, n_ranks=ranks, budget=0)
    assert a.stable_bytes() == b.stable_bytes()
    assert a.predicted_speedup >= 1.0
    assert a.measured_speedup >= 1.0


def test_measured_decision_is_byte_identical_across_reruns():
    a = tune(hydrogen_molecule(), MINIMAL, budget=2)
    b = tune(hydrogen_molecule(), MINIMAL, budget=2)
    assert a.stable_bytes() == b.stable_bytes()
    # The measured stage really ran: default + short list carry costs.
    assert a.default_outcome.measured_seconds is not None
    assert a.chosen_outcome.measured_seconds is not None


def test_measured_decision_never_slower_than_default():
    d = tune(water(), MINIMAL, budget=3)
    assert d.predicted_speedup >= 1.0
    assert d.measured_speedup >= 1.0
    assert (
        d.chosen_outcome.predicted_seconds
        <= d.default_outcome.predicted_seconds
    )


def test_tuned_settings_applies_winner_with_tuning_off():
    effective, decision = tuned_settings(
        hydrogen_molecule(), MINIMAL.with_tuning(mode="auto"), budget=1
    )
    assert effective.tuning.mode == "off"
    assert effective.backend == decision.chosen.backend
    assert (
        effective.grids.batch_target_points
        == decision.chosen.batch_target_points
    )


def test_tune_rejects_bad_budget_and_ranks():
    with pytest.raises(TuningError):
        tune(water(), MINIMAL, budget=-1)
    with pytest.raises(TuningError):
        tune(water(), MINIMAL, n_ranks=0)


# ----------------------------------------------------------------------
# Round trips: dict, artifact, RunReport, history
# ----------------------------------------------------------------------

def test_decision_round_trips_through_dict_and_artifact(tmp_path):
    d = tune(hydrogen_molecule(), MINIMAL, budget=1)
    clone = TunerDecision.from_dict(d.as_dict())
    assert clone.stable_bytes() == d.stable_bytes()
    path = d.write(tmp_path / "decision.json")
    loaded = TunerDecision.load(path)
    assert loaded.stable_bytes() == d.stable_bytes()
    assert loaded.chosen == d.chosen and loaded.default == d.default
    with pytest.raises(TuningError):
        TunerDecision.load(tmp_path / "missing.json")


def test_decision_round_trips_through_run_report(tmp_path):
    from repro.obs import RunReport

    d = tune(hydrogen_molecule(), MINIMAL, budget=1)
    report = RunReport.from_run(
        label="tuned:test", timer=None, tuner={"decision": d.as_dict()}
    )
    path = report.write(tmp_path / "report.json")
    doc = json.loads(path.read_text())
    recovered = TunerDecision.from_dict(doc["extra"]["tuner"]["decision"])
    assert recovered.stable_bytes() == d.stable_bytes()


def test_decision_round_trips_through_history_jsonl(tmp_path):
    hist = tmp_path / "BENCH_history.jsonl"
    d = tune(water(), MINIMAL, budget=0, history_path=hist)
    append_decision(hist, d, gate_ok=True)
    line = hist.read_text().strip().splitlines()[-1]
    entry = json.loads(line)
    assert entry["label"] == "tuner"
    recovered = TunerDecision.from_dict(entry["emission"])
    assert recovered.stable_bytes() == d.stable_bytes()


# ----------------------------------------------------------------------
# Warm start: the loop actually closes
# ----------------------------------------------------------------------

def test_history_warm_starts_the_next_decision(tmp_path):
    hist = tmp_path / "BENCH_history.jsonl"
    first = tune(water(), MINIMAL, budget=0, history_path=hist)
    assert not first.warm_started
    append_decision(hist, first)
    second = tune(water(), MINIMAL, budget=0, history_path=hist)
    assert second.warm_started
    assert first.chosen in [c.config for c in second.candidates]
    assert warm_start_configs(hist, first.fingerprint) == [first.chosen]
    # A different workload's decision never leaks in.
    assert warm_start_configs(
        hist, workload_fingerprint(hydrogen_molecule(), MINIMAL)
    ) == []


def test_warm_start_can_be_disabled(tmp_path):
    hist = tmp_path / "BENCH_history.jsonl"
    append_decision(hist, tune(water(), MINIMAL, budget=0))
    d = tune(
        water(), MINIMAL.with_tuning(warm_start=False),
        budget=0, history_path=hist,
    )
    assert not d.warm_started


# ----------------------------------------------------------------------
# The gate notices the tuner
# ----------------------------------------------------------------------

def test_perturbed_cost_model_fails_the_gate_naming_the_tuner():
    """make tune-check goes red when the cost model changes."""
    from repro.obs.bench import tuner_emission
    from repro.obs.regress import compare_reports

    baseline = tuner_emission(budget=1)
    fresh = tuner_emission(
        budget=1, cost_model=DEFAULT_COST_MODEL.perturbed(1.5)
    )
    report = compare_reports(fresh, baseline)
    assert not report.ok
    offenders = [d.key for d in report.offenders]
    assert any(
        "workloads" in key and "modeled_seconds" in key for key in offenders
    )


def test_unperturbed_tuner_emission_passes_its_own_gate():
    from repro.obs.bench import tuner_emission
    from repro.obs.regress import compare_reports

    baseline = tuner_emission(budget=1)
    fresh = tuner_emission(budget=1)
    assert compare_reports(fresh, baseline).ok


def test_tuner_emission_dispatches_from_baseline_tag():
    from repro.obs.bench import emission_for_baseline, tuner_emission

    baseline = tuner_emission(budget=1)
    fresh = emission_for_baseline(baseline)
    assert fresh["benchmark"] == "tuner"
    assert fresh["budget"] == baseline["budget"]
    assert sorted(fresh["workloads"]) == sorted(baseline["workloads"])


# ----------------------------------------------------------------------
# Fleet wave planner
# ----------------------------------------------------------------------

def test_wave_planner_tunes_and_caches_per_fingerprint():
    from repro.service import JobRequest, submit_job
    from repro.service.statestore import StateStore

    store = StateStore(lease_seconds=5.0)
    for i in range(5):
        submit_job(
            store, JobRequest(hydrogen_molecule(), MINIMAL, seed=i), now=0.0
        )
    planner = WavePlanner()
    wave = planner.plan(store)
    assert 1 <= wave <= 5
    assert planner.n_decisions == 1
    assert planner.plan(store) == wave  # cached, no re-tune
    assert planner.n_decisions == 1


def test_wave_planner_defaults_on_unpriceable_payloads():
    from repro.service.statestore import StateStore

    store = StateStore(lease_seconds=5.0)
    store.submit({"kind": "noop"}, key="k1", now=0.0)
    assert WavePlanner().plan(store) == 1
    assert WavePlanner().plan(StateStore(lease_seconds=5.0)) == 1


def test_worker_pool_auto_fleet_drains_byte_identically():
    from repro.service import JobRequest, submit_job
    from repro.service.statestore import StateStore
    from repro.service.worker import WorkerPool, stable_result_bytes

    def run(fleet):
        store = StateStore(lease_seconds=30.0)
        keys = [
            submit_job(
                store, JobRequest(hydrogen_molecule(), MINIMAL, seed=i),
                now=0.0,
            ).task.key
            for i in range(4)
        ]
        pool = WorkerPool(store, n_workers=1, fleet=fleet)
        report = pool.run_until_idle()
        assert report.idle
        return {k: stable_result_bytes(store.result_for_key(k)) for k in keys}

    assert run(None) == run("auto")


def test_worker_pool_rejects_unknown_fleet_mode():
    from repro.service.statestore import StateStore
    from repro.service.worker import WorkerPool

    with pytest.raises(ServiceError):
        WorkerPool(StateStore(lease_seconds=5.0), fleet="bogus")


# ----------------------------------------------------------------------
# Docstring audit extension
# ----------------------------------------------------------------------

def test_docstring_audit_covers_tune_and_reports_all_offenders():
    from repro.testing.docs import AUDITED_MODULES, missing_docstrings

    assert "repro.tune" in AUDITED_MODULES
    assert "repro.tune.tuner" in AUDITED_MODULES
    assert missing_docstrings(["repro.tune", "repro.tune.space"]) == []
    # Broken modules are recorded as offenders — and the audit keeps
    # going, reporting every later module in the same run.
    offenders = missing_docstrings(
        ["repro.no_such_module", "repro.also_missing", "repro.tune"]
    )
    assert any("repro.no_such_module" in o for o in offenders)
    assert any("repro.also_missing" in o for o in offenders)

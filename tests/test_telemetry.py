"""Service-telemetry contract suite (DESIGN §16).

Four layers, each pinned:

* **window algebra** — hypothesis properties of the rollup aggregator:
  window-boundary invariance (totals are independent of window width),
  merge-of-windows == window-of-merged, and deterministic nearest-rank
  percentiles;
* **alerting** — declarative rules with hysteresis fire and clear
  deterministically; the seeded ``worker_crash`` chaos scenario fires
  exactly the crash-rate alert (pinned transition sequence) while the
  fault-free run fires none, and the whole SLO emission is byte-stable;
* **health** — heartbeat-age classification against the lease, surfaced
  through ``StateStore.render_status``;
* **plumbing** — the telemetry sink's store hooks (cache hits, dedups,
  lease expiries, crashes), journal round-trips and the fleet Perfetto
  export with one track per worker.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import Tracer, activate, service_track_events
from repro.obs.telemetry import (
    AlertEngine,
    AlertRule,
    TelemetrySink,
    WindowRollup,
    classify_heartbeat_age,
    load_events,
    merge,
    overall,
    percentile,
    rollup,
    run_slo_scenario,
    slo_emission,
    stable_slo_bytes,
    telemetry_path_for,
    window_origin,
    worker_health,
)
from repro.service import StateStore


# ----------------------------------------------------------------------
# Event-stream strategy: arbitrary (not merely well-formed) streams —
# the window algebra must hold regardless of lifecycle discipline.
# ----------------------------------------------------------------------
_KINDS = st.sampled_from(
    [
        "submit",
        "resubmit",
        "claim",
        "start",
        "heartbeat",
        "complete",
        "requeue",
        "cancel",
        "cache_hit",
        "dedup",
        "lease_expiry",
        "worker_crash",
        "phase_work",
    ]
)


@st.composite
def event_streams(draw):
    n = draw(st.integers(min_value=0, max_value=40))
    events = []
    for _ in range(n):
        kind = draw(_KINDS)
        ev = {
            "kind": kind,
            "t": draw(st.integers(0, 63)) * 0.5,
            "task": f"t{draw(st.integers(0, 5))}",
        }
        if kind == "requeue":
            ev["terminal"] = draw(st.booleans())
            ev["expired"] = draw(st.booleans())
        if kind == "phase_work":
            ev["phases"] = {"scf": draw(st.integers(1, 9)) * 0.125}
        events.append(ev)
    events.sort(key=lambda e: e["t"])
    return events


def _totals(windows):
    counts = {}
    qw, ttr, phases = [], [], {}
    for w in windows:
        for k, v in w.counts.items():
            counts[k] = counts.get(k, 0) + v
        qw.extend(w.queue_wait)
        ttr.extend(w.time_to_result)
        for k, v in w.phase_seconds.items():
            phases[k] = phases.get(k, 0.0) + v
    return counts, sorted(qw), sorted(ttr), phases


class TestWindowAlgebra:
    @given(events=event_streams(), window=st.sampled_from([0.5, 1.0, 3.0, 7.0]))
    @settings(max_examples=60, deadline=None)
    def test_window_boundary_invariance(self, events, window):
        """Totals must not depend on where window boundaries fall."""
        windows = rollup(events, window)
        counts, qw, ttr, phases = _totals(windows)
        whole = overall(events)
        assert counts == whole.counts
        assert qw == sorted(whole.queue_wait)
        assert ttr == sorted(whole.time_to_result)
        assert phases == pytest.approx(whole.phase_seconds)

    @given(events=event_streams(), window=st.sampled_from([1.0, 2.0, 5.0]))
    @settings(max_examples=60, deadline=None)
    def test_merge_of_windows_equals_window_of_merged(self, events, window):
        fine = rollup(events, window, horizon=64.0)
        if len(fine) % 2:
            fine = rollup(events, window, horizon=(len(fine) + 1) * window)
        coarse = rollup(events, 2 * window, horizon=len(fine) * window)
        merged = [
            merge(fine[2 * k], fine[2 * k + 1]) for k in range(len(fine) // 2)
        ]
        assert len(merged) == len(coarse)
        for m, c in zip(merged, coarse):
            assert m.as_dict() == c.as_dict()

    @given(
        samples=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30),
        q=st.sampled_from([1, 50, 90, 99, 100]),
    )
    @settings(max_examples=80, deadline=None)
    def test_percentile_is_an_observed_sample(self, samples, q):
        assert percentile(samples, q) in samples

    @given(samples=st.permutations([3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0]))
    @settings(max_examples=20, deadline=None)
    def test_percentile_order_invariant(self, samples):
        assert [percentile(samples, q) for q in (50, 90, 99)] == [3.0, 9.0, 9.0]

    def test_percentile_rejects_bad_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 0)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_latency_attributed_to_resolving_window(self):
        events = [
            {"kind": "submit", "t": 0.0, "task": "a"},
            {"kind": "claim", "t": 5.0, "task": "a", "worker": "w0"},
            {"kind": "complete", "t": 9.0, "task": "a", "worker": "w0"},
        ]
        w = rollup(events, 4.0)
        assert [x.queue_wait for x in w] == [[], [5.0], []]
        assert [x.time_to_result for x in w] == [[], [], [9.0]]

    def test_queue_snapshot_and_oldest_age(self):
        events = [
            {"kind": "submit", "t": 1.0, "task": "a"},
            {"kind": "submit", "t": 2.0, "task": "b"},
            {"kind": "claim", "t": 5.0, "task": "b", "worker": "w0"},
        ]
        w0, w1 = rollup(events, 4.0, horizon=8.0)
        assert (w0.waiting_at_end, w0.oldest_waiting_age) == (2, 3.0)
        assert (w1.waiting_at_end, w1.oldest_waiting_age) == (1, 7.0)

    def test_provenance_header_ignored(self):
        events = [
            {"kind": "provenance", "t": -1.0},
            {"kind": "submit", "t": 0.0, "task": "a"},
        ]
        (w,) = rollup(events, 4.0)
        assert w.counts["submitted"] == 1

    def test_window_origin_aligns_epoch_journals(self):
        events = [{"kind": "submit", "t": 1.7e9 + 3.0, "task": "a"}]
        t0 = window_origin(events, 4.0)
        assert t0 % 4.0 == 0.0 and t0 <= 1.7e9 + 3.0
        assert len(rollup(events, 4.0, t0=t0)) == 1

    def test_rollup_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            rollup([], 0.0)


# ----------------------------------------------------------------------
# Alert rules + hysteresis
# ----------------------------------------------------------------------
def _window(index, **counts):
    w = WindowRollup(index=index, start=4.0 * index, end=4.0 * (index + 1))
    w.counts.update(counts)
    return w


class TestAlerts:
    def test_rule_validation(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            AlertRule("bad", "crash_rate", ">=", 0.5)
        with pytest.raises(ReproError):
            AlertRule("bad", "crash_rate", ">", 0.5, fire_after=0)
        with pytest.raises(ReproError):
            AlertEngine(
                [
                    AlertRule("dup", "crash_rate", ">", 0.5),
                    AlertRule("dup", "failure_rate", ">", 0.5),
                ]
            )

    def test_hysteresis_fire_and_clear(self):
        rule = AlertRule(
            "storm", "lease_expiries", ">", 1.0, fire_after=2, clear_after=2
        )
        # breach, breach (fires), breach, healthy, healthy (clears)
        windows = [
            _window(0, lease_expiries=3),
            _window(1, lease_expiries=3),
            _window(2, lease_expiries=3),
            _window(3),
            _window(4),
        ]
        out = AlertEngine([rule]).evaluate(windows)
        assert [(a["action"], a["window"]) for a in out] == [
            ("fired", 1),
            ("cleared", 4),
        ]

    def test_no_refire_while_active(self):
        rule = AlertRule("spike", "crashes", ">", 0.0)
        windows = [_window(i, crashes=1) for i in range(4)]
        out = AlertEngine([rule]).evaluate(windows)
        assert [(a["action"], a["window"]) for a in out] == [("fired", 0)]

    def test_guard_suppresses_and_heals(self):
        rule = AlertRule(
            "floor",
            "cache_hit_ratio",
            "<",
            0.05,
            fire_after=1,
            clear_after=1,
            guard={"cache_lookups": 16.0},
        )
        # ratio is 0 everywhere, but only window 1 has enough lookups.
        windows = [
            _window(0, submitted=2),
            _window(1, submitted=20),
            _window(2, submitted=2),
        ]
        out = AlertEngine([rule]).evaluate(windows)
        assert [(a["action"], a["window"]) for a in out] == [
            ("fired", 1),
            ("cleared", 2),
        ]

    def test_transitions_recorded_into_sink(self):
        sink = TelemetrySink()
        AlertEngine([AlertRule("spike", "crashes", ">", 0.0)]).evaluate(
            [_window(0, crashes=2)], sink=sink
        )
        (ev,) = sink.events
        assert ev["kind"] == "alert" and ev["rule"] == "spike"


# ----------------------------------------------------------------------
# The committed SLO scenario: chaos fires, steady is silent, bytes pin.
# ----------------------------------------------------------------------
class TestSloScenario:
    def test_steady_run_fires_no_alerts(self):
        run = run_slo_scenario(faults=False)
        assert run.alerts == []
        assert run.completed == 8 and run.crashes == 0

    def test_chaos_run_fires_exact_alert_sequence(self):
        run = run_slo_scenario(faults=True)
        assert run.completed == 8  # every crash is recovered
        assert run.crashes == 2
        assert [(a["rule"], a["action"], a["window"]) for a in run.alerts] == [
            ("crash_rate_spike", "fired", 0),
            ("crash_rate_spike", "cleared", 2),
        ]

    def test_chaos_recovery_via_lease_expiry(self):
        run = run_slo_scenario(faults=True)
        whole = overall(run.sink.events, horizon=16.0)
        assert whole.counts["lease_expiries"] == 2
        assert whole.counts["requeued"] == 2
        assert whole.counts["failed"] == 0  # crashes are silent, not fails

    def test_emission_byte_stable(self):
        a = slo_emission(seed=2023, window=4.0)
        b = slo_emission(seed=2023, window=4.0)
        assert stable_slo_bytes(a) == stable_slo_bytes(b)
        assert a["timings"] != {}  # walls exist but are quarantined

    def test_emission_round_trips_through_regression_gate(self):
        from repro.obs.bench import emission_for_baseline
        from repro.obs.regress import compare_reports

        baseline = slo_emission(seed=2023, window=4.0)
        fresh = emission_for_baseline(baseline)
        assert compare_reports(fresh, baseline).ok


# ----------------------------------------------------------------------
# Worker health model
# ----------------------------------------------------------------------
class TestHealth:
    @pytest.mark.parametrize(
        "age,expected",
        [(0.0, "live"), (2.0, "live"), (3.0, "degraded"), (4.5, "stuck")],
    )
    def test_classification_against_lease(self, age, expected):
        assert classify_heartbeat_age(age, 2.0) == expected

    def test_idle_without_live_task(self):
        assert classify_heartbeat_age(99.0, 2.0, holds_live_task=False) == "idle"

    def test_worker_health_sorted_and_counted(self):
        rows = worker_health(
            {"w1": 5.0, "w0": 9.0},
            {"w0": 1, "w1": 1},
            now=10.0,
            lease_seconds=2.0,
        )
        assert [(r.worker, r.state) for r in rows] == [
            ("w0", "live"),
            ("w1", "stuck"),
        ]

    def test_render_status_surfaces_health_and_queue_age(self):
        store = StateStore(lease_seconds=10.0)
        store.submit({"j": 1}, key="k1", now=0.0)
        store.submit({"j": 2}, key="k2", now=0.0)
        (task,) = store.claim("w0", limit=1, now=1.0)
        text = store.render_status(now=4.0)
        assert "oldest waiting task: 4s" in text
        assert "w0" in text and "live" in text

    def test_store_heartbeat_bookkeeping(self):
        store = StateStore(lease_seconds=10.0)
        store.submit({"j": 1}, key="k1", now=0.0)
        (task,) = store.claim("w0", limit=1, now=1.0)
        store.start(task.task_id, "w0", now=2.0)
        store.heartbeat(task.task_id, "w0", now=3.5)
        assert store.worker_heartbeats() == {"w0": 3.5}
        # a fail is worker contact; a lease expiry is worker silence
        store.fail(task.task_id, "w0", "boom", now=4.0)
        assert store.worker_heartbeats() == {"w0": 4.0}

    def test_oldest_waiting_age(self):
        store = StateStore(lease_seconds=10.0)
        assert store.oldest_waiting_age(now=5.0) == 0.0
        store.submit({"j": 1}, key="k1", now=1.0)
        assert store.oldest_waiting_age(now=5.0) == 4.0


# ----------------------------------------------------------------------
# Sink plumbing: store hooks, journal round-trip, counters.
# ----------------------------------------------------------------------
class TestSinkPlumbing:
    def test_sidecar_path(self):
        assert str(telemetry_path_for("a/service.jsonl")).endswith(
            "a/service.telemetry.jsonl"
        )

    def test_cache_hit_and_dedup_are_noted(self):
        sink = TelemetrySink()
        store = StateStore(lease_seconds=10.0, telemetry=sink)
        store.submit({"j": 1}, key="k1", now=0.0)
        store.submit({"j": 1}, key="k1", now=1.0)  # same key, still waiting
        kinds = [e["kind"] for e in sink.events]
        assert kinds == ["submit", "dedup"]

    def test_lease_expiry_noted_and_counted(self):
        sink = TelemetrySink()
        store = StateStore(
            lease_seconds=2.0,
            backoff_base=1.0,
            backoff_factor=2.0,
            telemetry=sink,
        )
        store.submit({"j": 1}, key="k1", now=0.0)
        store.claim("w0", limit=1, now=1.0)
        tracer = Tracer()
        with activate(tracer):
            expired = store.expire_leases(now=10.0)
        assert len(expired) == 1
        assert tracer.metrics.counter("service.lease_expiries").value == 1
        by_kind = {e["kind"]: e for e in sink.events}
        assert by_kind["lease_expiry"]["worker"] == "w0"
        assert by_kind["requeue"]["expired"] is True
        # silence, not contact: the dead worker's heartbeat is unchanged
        assert store.worker_heartbeats()["w0"] == 1.0

    def test_replay_does_not_resample(self, tmp_path):
        journal = tmp_path / "service.jsonl"
        store = StateStore(path=journal, lease_seconds=10.0)
        sink = TelemetrySink()
        store.submit({"j": 1}, key="k1", now=0.0)
        reopened = StateStore(path=journal, lease_seconds=10.0, telemetry=sink)
        assert reopened.counts()["waiting"] == 1
        assert sink.events == []

    def test_journal_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = TelemetrySink(path)
        sink.note("worker_crash", 3.0, worker="w0", task="t-000001")
        sink.note("cache_hit", 4.0, task="t-000001", key="k")
        assert load_events(path) == sink.events

    def test_load_events_rejects_corrupt_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "cache_hit", "t": 1.0}\n{oops\n')
        with pytest.raises(ValueError, match=":2"):
            load_events(path)

    def test_note_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            TelemetrySink().note("surprise", 0.0)


# ----------------------------------------------------------------------
# Fleet Perfetto export: one track per worker.
# ----------------------------------------------------------------------
class TestServiceTrackExport:
    def test_one_track_per_worker_plus_queue(self):
        run = run_slo_scenario(faults=True)
        events = service_track_events(run.sink.events)
        metas = {
            e["args"]["name"]: e["tid"]
            for e in events
            if e.get("name") == "thread_name"
        }
        assert metas["service queue"] == 0
        assert {"worker w0", "worker w1"} <= set(metas)
        spans = [e for e in events if e.get("ph") == "X"]
        assert spans and all(e["pid"] == 2 for e in spans)
        outcomes = {e["args"]["outcome"] for e in spans}
        assert "crashed" in outcomes and "completed" in outcomes

    def test_chrome_trace_merges_service_tracks(self):
        run = run_slo_scenario(faults=False)
        from repro.obs import chrome_trace

        doc = json.loads(
            json.dumps(chrome_trace([], telemetry_events=run.sink.events))
        )
        pids = {e.get("pid") for e in doc["traceEvents"] if "pid" in e}
        assert 2 in pids

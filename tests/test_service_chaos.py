"""Service chaos integration: seeded worker crashes vs fault-free runs.

Reuses the fault layer (:mod:`repro.runtime.faults`, ``worker_crash``
kind) and the chaos harness (:func:`repro.testing.chaos.run_service_chaos`)
to prove the acceptance criterion: a worker crash mid-task is recovered
by lease expiry + bounded retry, and the recomputed result converges to
the **same provenance-stable bytes** as a run that never faulted.

Marked ``service`` (default-off, mirroring the ``chaos`` marker); run
with ``pytest -m service`` or ``make service-check``.
"""

from __future__ import annotations

import json

import pytest

from repro.config import get_settings
from repro.runtime.faults import FaultPlan, FaultRates, ScheduledFault
from repro.service import (
    COMPLETE,
    ERRORED,
    JobRequest,
    StateStore,
    WorkerPool,
    stable_result_bytes,
    submit_batch,
)
from repro.testing.chaos import run_service_chaos

pytestmark = pytest.mark.service


def stub_runner(task):
    """Deterministic, payload-addressed stand-in for the physics runner.

    Carries a volatile ``timings`` subtree (different every call) to
    prove byte-stability comes from quarantining, not from luck.
    """
    import time

    return {
        "task": {"key": task.key},
        "value": sum(ord(c) for c in task.key),
        "timings": {"wall": time.time()},
    }


def jobs(n=3, **kwargs):
    s = get_settings("minimal")
    return [
        JobRequest("h2", s.with_scf(max_iterations=20 + i), **kwargs)
        for i in range(n)
    ]


class TestScheduledCrashRecovery:
    def test_crash_mid_task_requeues_and_converges(self):
        report = run_service_chaos(
            requests=jobs(3),
            seed=11,
            rates=FaultRates(),  # schedule-only: exactly one crash
            schedule=[ScheduledFault("worker_crash", call_index=0,
                                     site="worker:w0")],
            runner=stub_runner,
        )
        assert report.crashes == 1
        assert report.completed == 3
        assert report.errored == 0
        # the crashed task took a second attempt
        assert max(report.attempts.values()) == 2
        assert report.bit_exact, report.summary()

    def test_crashes_on_both_workers_still_converge(self):
        report = run_service_chaos(
            requests=jobs(4),
            seed=12,
            rates=FaultRates(),
            schedule=[
                ScheduledFault("worker_crash", call_index=0, site="worker:w0"),
                ScheduledFault("worker_crash", call_index=0, site="worker:w1"),
            ],
            runner=stub_runner,
        )
        assert report.crashes == 2
        assert report.completed == 4
        assert report.bit_exact

    def test_persistent_crash_exhausts_to_errored(self):
        """An unsurvivable worker bug drains the retry budget terminally."""
        store = StateStore(lease_seconds=2.0)
        submit_batch(store, jobs(1, max_retries=1), commit="x", now=0.0)
        plan = FaultPlan(
            seed=5,
            schedule=[
                ScheduledFault("worker_crash", call_index=i,
                               site="worker:w0", persistent=True)
                for i in range(4)
            ],
        )
        pool = WorkerPool(store, n_workers=1, runner=stub_runner,
                          fault_plan=plan, start_time=0.0)
        report = pool.run_until_idle()
        assert report.idle
        assert report.crashes == 2  # first try + single retry
        (task,) = store.tasks(ERRORED)
        assert task.attempts == 2
        assert "lease expired" in task.error


class TestFlakyRunnerRecovery:
    def test_runner_exception_requeues_and_retries_to_success(self):
        """A raising runner is the *cooperative* failure path (``fail``
        with backoff), distinct from a crash (silence + lease expiry);
        the pool retries it to the same answer."""
        store = StateStore(lease_seconds=2.0)
        submit_batch(store, jobs(1, max_retries=3), commit="x", now=0.0)
        calls = {"n": 0}

        def flaky(task):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient kernel error")
            return stub_runner(task)

        pool = WorkerPool(store, n_workers=1, runner=flaky, start_time=0.0)
        report = pool.run_until_idle()
        assert report.failed == 1 and report.completed == 1
        (task,) = store.tasks(COMPLETE)
        assert task.attempts == 2
        assert store.result_for_key(task.key)["value"] == \
            sum(ord(c) for c in task.key)


class TestRandomizedCrashSweep:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_random_crash_rates_converge_bit_exact(self, seed):
        report = run_service_chaos(
            requests=jobs(4, max_retries=6),
            seed=seed,
            rates=FaultRates(worker_crash=0.4),
            schedule=[],
            runner=stub_runner,
        )
        assert report.errored == 0
        assert report.completed == 4
        assert report.bit_exact, report.summary()

    def test_same_seed_same_fault_decisions(self):
        kwargs = dict(
            requests=jobs(3, max_retries=6),
            rates=FaultRates(worker_crash=0.5),
            schedule=[],
            runner=stub_runner,
        )
        a = run_service_chaos(seed=77, **kwargs)
        b = run_service_chaos(seed=77, **kwargs)
        assert a.crashes == b.crashes
        assert a.attempts == b.attempts
        assert a.payload_bytes == b.payload_bytes


class TestJournaledChaos:
    def test_chaos_with_journal_replays_consistently(self, tmp_path):
        path = tmp_path / "chaos-journal.jsonl"
        report = run_service_chaos(
            requests=jobs(2),
            seed=11,
            rates=FaultRates(),
            schedule=[ScheduledFault("worker_crash", call_index=0,
                                     site="worker:w0")],
            runner=stub_runner,
            store_path=path,
        )
        assert report.bit_exact
        replayed = StateStore(path)
        assert len(replayed.tasks(COMPLETE)) == 2
        for task in replayed.tasks(COMPLETE):
            assert (
                stable_result_bytes(replayed.result_for_key(task.key))
                == report.reference_bytes[task.key]
            )


class TestPhysicsPayloadStability:
    def test_real_run_report_payload_is_provenance_stable(self):
        """The acceptance criterion, end to end on real physics: a
        seeded crash forces a full SCF+CPSCF recomputation whose
        RunReport payload is byte-identical to the fault-free run."""
        report = run_service_chaos(
            requests=[JobRequest("h2", get_settings("minimal"))],
            seed=2023,
            rates=FaultRates(),
            schedule=[ScheduledFault("worker_crash", call_index=0,
                                     site="worker:w0")],
            runner=None,  # the real physics runner
            n_workers=1,
        )
        assert report.crashes == 1
        assert report.completed == 1
        assert report.bit_exact, report.summary()
        (payload,) = report.payload_bytes.values()
        doc = json.loads(payload)
        # provenance-linked, physics-bearing, timings quarantined away
        assert doc["provenance"]["settings_hash"]
        assert doc["molecule"] == "H2"
        assert "timings" not in doc
        assert len(doc["polarizability"]) == 3


class TestFleetCrashRecovery:
    """Fleet-mode waves under injected crashes: partial-wave loss is
    recovered by lease expiry, and the drained bytes match a pool that
    never ran in fleet mode (the reference stays sequential)."""

    def test_crash_mid_wave_requeues_only_unfinished_tasks(self):
        report = run_service_chaos(
            requests=jobs(4),
            seed=13,
            n_workers=1,
            fleet=4,
            rates=FaultRates(),  # schedule-only: one mid-wave crash
            schedule=[ScheduledFault("worker_crash", call_index=2,
                                     site="worker:w0")],
            runner=stub_runner,
        )
        assert report.crashes == 1
        assert report.completed == 4
        assert report.errored == 0
        # Tasks claimed before the crash completed on their first
        # attempt; the abandoned remainder of the wave took a second.
        assert sorted(report.attempts.values()) == [1, 1, 2, 2]
        assert report.bit_exact, report.summary()

    def test_random_crash_rates_converge_bit_exact_in_fleet_mode(self):
        report = run_service_chaos(
            requests=jobs(5, max_retries=6),
            seed=21,
            n_workers=2,
            fleet=3,
            rates=FaultRates(worker_crash=0.4),
            schedule=[],
            runner=stub_runner,
        )
        assert report.errored == 0
        assert report.completed == 5
        assert report.bit_exact, report.summary()

    def test_real_physics_fleet_wave_survives_crash_byte_stable(self):
        """End to end on real physics: a crashed fleet wave is retried
        through the shared-substrate driver and converges to the same
        bytes as a sequential, fault-free pool."""
        s = get_settings("minimal")
        report = run_service_chaos(
            requests=[
                JobRequest("h2", s.with_scf(max_iterations=20 + i))
                for i in range(2)
            ],
            seed=2023,
            n_workers=1,
            fleet=2,
            rates=FaultRates(),
            schedule=[ScheduledFault("worker_crash", call_index=0,
                                     site="worker:w0")],
            runner=None,  # the real physics runner, fleet waves
        )
        assert report.crashes == 1
        assert report.completed == 2
        assert report.errored == 0
        assert report.bit_exact, report.summary()

"""Spherical harmonics: orthonormality, indexing, gradients, consistency."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.basis.solid_harmonics import (
    MAX_BASIS_L,
    solid_harmonics,
    solid_harmonics_with_gradients,
)
from repro.basis.ylm import lm_index, lm_pairs, n_lm, real_spherical_harmonics
from repro.grids.angular import angular_rule


class TestIndexing:
    def test_n_lm(self):
        assert n_lm(0) == 1 and n_lm(2) == 9 and n_lm(6) == 49

    def test_lm_index_enumeration(self):
        pairs = lm_pairs(3)
        for i, (l, m) in enumerate(pairs):
            assert lm_index(l, m) == i

    def test_invalid_lm(self):
        with pytest.raises(ValueError):
            lm_index(1, 2)
        with pytest.raises(ValueError):
            n_lm(-1)


class TestYlm:
    @pytest.mark.parametrize("l_max", [0, 1, 2, 4, 6, 8])
    def test_orthonormal_under_quadrature(self, l_max):
        rule = angular_rule(2 * (l_max + 1) ** 2)
        assert rule.degree >= 2 * l_max
        y = real_spherical_harmonics(rule.points, l_max)
        gram = (y * rule.weights[:, None]).T @ y
        assert np.allclose(gram, np.eye(n_lm(l_max)), atol=1e-10)

    def test_y00_constant(self, rng):
        dirs = rng.normal(size=(50, 3))
        y = real_spherical_harmonics(dirs, 0)
        assert np.allclose(y[:, 0], 0.5 / np.sqrt(np.pi))

    def test_direction_normalization_invariance(self, rng):
        dirs = rng.normal(size=(20, 3))
        y1 = real_spherical_harmonics(dirs, 4)
        y2 = real_spherical_harmonics(dirs * 7.3, 4)
        assert np.allclose(y1, y2, atol=1e-12)

    def test_known_p_orbitals(self):
        # Y_1,0 along +z, Y_1,1 ~ x, Y_1,-1 ~ y with sqrt(3/4pi).
        c = np.sqrt(3.0 / (4.0 * np.pi))
        y = real_spherical_harmonics(np.array([[0.0, 0.0, 1.0]]), 1)
        assert y[0, lm_index(1, 0)] == pytest.approx(c)
        y = real_spherical_harmonics(np.array([[1.0, 0.0, 0.0]]), 1)
        assert y[0, lm_index(1, 1)] == pytest.approx(c)
        y = real_spherical_harmonics(np.array([[0.0, 1.0, 0.0]]), 1)
        assert y[0, lm_index(1, -1)] == pytest.approx(c)

    def test_pole_safe(self):
        y = real_spherical_harmonics(np.array([[0.0, 0.0, -1.0]]), 6)
        assert np.all(np.isfinite(y))

    def test_zero_vector_safe(self):
        y = real_spherical_harmonics(np.zeros((1, 3)), 4)
        assert np.all(np.isfinite(y))

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_addition_theorem(self, seed):
        """sum_m Y_lm(u)^2 = (2l+1)/(4 pi) for any direction (property)."""
        rng = np.random.default_rng(seed)
        u = rng.normal(size=(1, 3))
        if np.linalg.norm(u) < 1e-6:
            u = np.array([[1.0, 0.0, 0.0]])
        y = real_spherical_harmonics(u, 6)
        for l in range(7):
            total = sum(y[0, lm_index(l, m)] ** 2 for m in range(-l, l + 1))
            assert total == pytest.approx((2 * l + 1) / (4 * np.pi), rel=1e-9)


class TestSolidHarmonics:
    def test_matches_ylm_times_r_power(self, rng):
        pts = rng.normal(size=(40, 3))
        r = np.linalg.norm(pts, axis=1)
        s = solid_harmonics(pts, 2)
        y = real_spherical_harmonics(pts, 2)
        for l in range(3):
            for m in range(-l, l + 1):
                k = lm_index(l, m)
                assert np.allclose(s[:, k], y[:, k] * r**l, atol=1e-10)

    def test_gradients_match_finite_difference(self, rng):
        pts = rng.normal(size=(25, 3))
        _, grads = solid_harmonics_with_gradients(pts, 2)
        eps = 1e-6
        for axis in range(3):
            dp = pts.copy()
            dp[:, axis] += eps
            dm = pts.copy()
            dm[:, axis] -= eps
            fd = (solid_harmonics(dp, 2) - solid_harmonics(dm, 2)) / (2 * eps)
            assert np.allclose(grads[:, :, axis], fd, atol=1e-7)

    def test_l_max_guard(self):
        with pytest.raises(ValueError):
            solid_harmonics(np.zeros((1, 3)), MAX_BASIS_L + 1)

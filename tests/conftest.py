"""Shared fixtures: expensive physics objects built once per session,
plus factories for the small machine/cluster instances the runtime,
communication and fault suites all need (the factories themselves live
in :mod:`repro.testing.fixtures`, shared with the bench harness)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.atoms import hydrogen_molecule, water
from repro.config import get_settings
from repro.dft import SCFDriver
from repro.testing import fixtures as _factories


def pytest_addoption(parser):
    parser.addoption(
        "--run-golden-update",
        action="store_true",
        default=False,
        help="allow the golden-regeneration tests to rewrite snapshots "
        "(in a temp dir); without it those tests are skipped",
    )


@pytest.fixture
def golden_update_enabled(request):
    if not request.config.getoption("--run-golden-update"):
        pytest.skip("golden regeneration requires --run-golden-update")
    return True


@pytest.fixture(scope="session")
def minimal_settings():
    return get_settings("minimal")


@pytest.fixture(scope="session")
def h2_ground_state(minimal_settings):
    """Converged H2 ground state (minimal settings)."""
    return SCFDriver(hydrogen_molecule(), minimal_settings).run()


@pytest.fixture(scope="session")
def water_ground_state(minimal_settings):
    """Converged H2O ground state (minimal settings)."""
    return SCFDriver(water(), minimal_settings).run()


@pytest.fixture
def rng():
    return np.random.default_rng(20230712)


@pytest.fixture
def make_machine():
    """Factory fixture over :func:`repro.testing.fixtures.make_machine`."""
    return _factories.make_machine


@pytest.fixture
def make_cluster():
    """Factory fixture over :func:`repro.testing.fixtures.make_cluster`."""
    return _factories.make_cluster

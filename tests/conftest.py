"""Shared fixtures: expensive physics objects built once per session,
plus factories for the small machine/cluster instances the runtime,
communication and fault suites all need."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.atoms import hydrogen_molecule, water
from repro.config import get_settings
from repro.dft import SCFDriver
from repro.runtime import HPC2_AMD, SimCluster


@pytest.fixture(scope="session")
def minimal_settings():
    return get_settings("minimal")


@pytest.fixture(scope="session")
def h2_ground_state(minimal_settings):
    """Converged H2 ground state (minimal settings)."""
    return SCFDriver(hydrogen_molecule(), minimal_settings).run()


@pytest.fixture(scope="session")
def water_ground_state(minimal_settings):
    """Converged H2O ground state (minimal settings)."""
    return SCFDriver(water(), minimal_settings).run()


@pytest.fixture
def rng():
    return np.random.default_rng(20230712)


@pytest.fixture
def make_machine():
    """Factory for small MachineSpec variants derived from a preset.

    ``make_machine(procs_per_node=4)`` clones HPC#2 with overrides;
    pass ``base=HPC1_SUNWAY`` to start from the other preset.
    """

    def _make(base=HPC2_AMD, **overrides):
        return replace(base, **overrides) if overrides else base

    return _make


@pytest.fixture
def make_cluster(make_machine):
    """Factory for small SimCluster instances.

    ``make_cluster(8)`` gives 8 ranks on HPC#2; keyword arguments are
    split between MachineSpec overrides (``procs_per_node=...``) and
    SimCluster options (``fault_plan=``, ``retry_policy=``, ``base=``).
    """

    def _make(n_ranks=8, fault_plan=None, retry_policy=None, base=HPC2_AMD,
              **machine_overrides):
        machine = make_machine(base, **machine_overrides)
        return SimCluster(
            machine, n_ranks, fault_plan=fault_plan, retry_policy=retry_policy
        )

    return _make

"""Shared fixtures: expensive physics objects built once per session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.atoms import hydrogen_molecule, water
from repro.config import get_settings
from repro.dft import SCFDriver


@pytest.fixture(scope="session")
def minimal_settings():
    return get_settings("minimal")


@pytest.fixture(scope="session")
def h2_ground_state(minimal_settings):
    """Converged H2 ground state (minimal settings)."""
    return SCFDriver(hydrogen_molecule(), minimal_settings).run()


@pytest.fixture(scope="session")
def water_ground_state(minimal_settings):
    """Converged H2O ground state (minimal settings)."""
    return SCFDriver(water(), minimal_settings).run()


@pytest.fixture
def rng():
    return np.random.default_rng(20230712)

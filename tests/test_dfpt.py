"""DFPT: the library's central physics claim — response theory is exact
to first order, validated against finite-field references."""

import numpy as np
import pytest

from repro.atoms import hydrogen_molecule, water
from repro.config import CPSCFSettings
from repro.dfpt import (
    DFPTSolver,
    finite_difference_polarizability,
    isotropic_polarizability,
    polarizability_tensor,
)
from repro.dft import SCFDriver
from repro.errors import CPSCFConvergenceError


class TestResponseCycle:
    def test_converges_for_h2(self, h2_ground_state):
        solver = DFPTSolver(h2_ground_state)
        result = solver.solve_direction(2)
        assert result.iterations >= 2
        assert result.residual < 1e-6

    def test_direction_validation(self, h2_ground_state):
        with pytest.raises(ValueError):
            DFPTSolver(h2_ground_state).solve_direction(3)

    def test_response_density_integrates_to_zero(self, h2_ground_state):
        """A homogeneous field conserves charge: int n^(1) = 0."""
        result = DFPTSolver(h2_ground_state).solve_direction(2)
        total = h2_ground_state.grid.integrate(result.response_density)
        assert total == pytest.approx(0.0, abs=1e-6)

    def test_response_dm_symmetric(self, h2_ground_state):
        result = DFPTSolver(h2_ground_state).solve_direction(0)
        p1 = result.response_density_matrix
        assert np.allclose(p1, p1.T)

    def test_nonconvergence_raises(self, h2_ground_state):
        settings = CPSCFSettings(max_iterations=1, response_tolerance=1e-14)
        with pytest.raises(CPSCFConvergenceError):
            DFPTSolver(h2_ground_state, settings).solve_direction(0)

    def test_solve_all_returns_three(self, h2_ground_state):
        results = DFPTSolver(h2_ground_state).solve_all()
        assert [r.direction for r in results] == [0, 1, 2]


class TestPolarizability:
    def test_h2_dfpt_matches_finite_difference(self, h2_ground_state, minimal_settings):
        alpha = polarizability_tensor(h2_ground_state, minimal_settings.cpscf)
        driver = SCFDriver(hydrogen_molecule(), minimal_settings)
        alpha_fd = finite_difference_polarizability(
            hydrogen_molecule(), minimal_settings, driver=driver
        )
        assert np.allclose(alpha, alpha_fd, atol=5e-4)

    def test_h2_symmetry(self, h2_ground_state, minimal_settings):
        alpha = polarizability_tensor(h2_ground_state, minimal_settings.cpscf)
        # Axial molecule along z: alpha_xx == alpha_yy, off-diagonals ~ 0.
        assert alpha[0, 0] == pytest.approx(alpha[1, 1], rel=1e-6)
        off = alpha - np.diag(np.diag(alpha))
        assert np.abs(off).max() < 1e-6
        # Parallel component exceeds perpendicular for H2.
        assert alpha[2, 2] > alpha[0, 0]

    def test_h2_positive_definite(self, h2_ground_state, minimal_settings):
        alpha = polarizability_tensor(h2_ground_state, minimal_settings.cpscf)
        assert np.linalg.eigvalsh(alpha).min() > 0.0

    def test_h2_magnitude_physical(self, h2_ground_state, minimal_settings):
        alpha = polarizability_tensor(h2_ground_state, minimal_settings.cpscf)
        iso = isotropic_polarizability(alpha)
        # Experimental ~5.2 a.u.; minimal model lands within ~30%.
        assert 3.0 < iso < 7.0

    def test_water_dfpt_matches_finite_difference(
        self, water_ground_state, minimal_settings
    ):
        alpha = polarizability_tensor(water_ground_state, minimal_settings.cpscf)
        driver = SCFDriver(water(), minimal_settings)
        alpha_fd = finite_difference_polarizability(
            water(), minimal_settings, driver=driver
        )
        assert np.allclose(alpha, alpha_fd, atol=1e-3)

    def test_water_magnitude_physical(self, water_ground_state, minimal_settings):
        alpha = polarizability_tensor(water_ground_state, minimal_settings.cpscf)
        iso = isotropic_polarizability(alpha)
        assert 7.0 < iso < 13.0  # expt ~9.8 a.u.

    def test_isotropic_validation(self):
        with pytest.raises(ValueError):
            isotropic_polarizability(np.zeros((2, 2)))

    def test_fd_step_validation(self, minimal_settings):
        with pytest.raises(ValueError):
            finite_difference_polarizability(
                hydrogen_molecule(), minimal_settings, step=0.0
            )

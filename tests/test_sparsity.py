"""Block-sparse screening: pattern construction, equivalence, caches.

The locality seam's contract, pinned from four sides:

* the pattern itself (thresholds, monotonicity, stats bookkeeping);
* threshold ``0.0`` is *disabled* — bitwise identical to the dense
  pre-screening path on every backend (property-tested over random
  chain molecules);
* positive thresholds keep all three backends bit-identical to each
  other and within physics tolerance of dense;
* the numpy table cache composes with screening by *slicing* (never
  re-evaluating), and the batched LRU keys on the active-set hash.
"""

import numpy as np
import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.atoms import Structure, polyethylene, water
from repro.backends import available_backends
from repro.basis import build_basis
from repro.config import get_settings
from repro.dft.hamiltonian import MatrixBuilder
from repro.errors import GridError
from repro.grids import (
    build_grid,
    build_sparsity_pattern,
    modeled_block_counts,
)
from repro.grids.sparsity import (
    DEFAULT_SCREENING_THRESHOLD,
    active_fraction_histogram,
)

BACKENDS = tuple(available_backends())


def _chain(seed: int, n_atoms: int) -> Structure:
    """A jittered self-avoiding H chain — elongated enough that screening
    has something to drop, deterministic in the seed."""
    rng = np.random.default_rng(seed)
    steps = rng.uniform(-0.6, 0.6, size=(n_atoms, 3))
    steps[:, 0] = rng.uniform(1.8, 2.6, size=n_atoms)  # march along +x
    coords = np.cumsum(steps, axis=0)
    return Structure(["H"] * n_atoms, coords, name=f"chain{seed}")


def _builders(structure, threshold, backend="numpy", **kwargs):
    """(dense, screened) builders sharing one basis/grid/batches."""
    settings = get_settings("minimal")
    basis = build_basis(structure)
    grid = build_grid(structure, settings.grids, with_partition=True)
    dense = MatrixBuilder(basis, grid, backend=backend, **kwargs)
    screened = MatrixBuilder(
        basis,
        grid,
        batches=dense.batches,
        backend=backend,
        screening_threshold=threshold,
        **kwargs,
    )
    return dense, screened


def _probe_inputs(builder, seed=7):
    rng = np.random.default_rng(seed)
    nb = builder.basis.n_basis
    p = rng.normal(size=(nb, nb))
    return p + p.T, rng.normal(size=builder.grid.n_points)


class TestPatternConstruction:
    def test_zero_threshold_is_rejected(self):
        structure = water()
        settings = get_settings("minimal")
        basis = build_basis(structure)
        grid = build_grid(structure, settings.grids, with_partition=True)
        builder = MatrixBuilder(basis, grid)
        with pytest.raises(GridError):
            build_sparsity_pattern(basis, builder.batches, 0.0)

    def test_disabled_screening_builds_no_pattern(self):
        structure = water()
        settings = get_settings("minimal")
        basis = build_basis(structure)
        grid = build_grid(structure, settings.grids, with_partition=True)
        builder = MatrixBuilder(basis, grid, screening_threshold=0.0)
        assert builder.pattern is None
        assert builder.screening_threshold == 0.0

    def test_stats_bookkeeping_is_consistent(self):
        _, screened = _builders(_chain(3, 6), DEFAULT_SCREENING_THRESHOLD)
        pattern = screened.pattern
        stats = pattern.stats
        n_atoms = screened.grid.structure.n_atoms
        assert stats.n_batches == len(screened.batches) == pattern.n_batches
        assert stats.blocks_dense == stats.n_batches * n_atoms
        assert stats.blocks_active == sum(
            len(a) for a in pattern.active_atoms
        )
        assert 0.0 < stats.fill_fraction <= 1.0
        assert sum(stats.histogram) == stats.n_batches
        assert stats.block_reduction >= 1.0
        # Every active function's owner atom is in the batch's atom set.
        fn_atom = screened.basis.function_atoms
        for b in range(pattern.n_batches):
            owners = set(fn_atom[pattern.active_functions[b]].tolist())
            assert owners <= set(pattern.active_atoms[b])

    def test_matrix_nnz_counts_block_mask_elements(self):
        _, screened = _builders(_chain(4, 5), DEFAULT_SCREENING_THRESHOLD)
        pattern = screened.pattern
        fn_counts = np.bincount(
            screened.basis.function_atoms,
            minlength=screened.grid.structure.n_atoms,
        )
        expected = int(fn_counts @ pattern.block_mask @ fn_counts)
        assert pattern.matrix_nnz == expected
        assert pattern.matrix_nnz <= screened.basis.n_basis**2

    @given(
        seed=st.integers(0, 1000),
        tighter=st.sampled_from([1e-10, 1e-8, 1e-6]),
        factor=st.sampled_from([10.0, 1e3, 1e5]),
    )
    @hyp_settings(max_examples=25, deadline=None)
    def test_function_cutoffs_monotone_in_threshold(
        self, seed, tighter, factor
    ):
        basis = build_basis(_chain(seed, 3))
        r_tight = basis.screened_function_cutoffs(tighter)
        r_loose = basis.screened_function_cutoffs(tighter * factor)
        assert np.all(r_loose <= r_tight)
        assert np.all(r_tight <= basis.atom_cutoffs[basis.function_atoms])

    def test_active_sets_nest_as_threshold_loosens(self):
        structure = _chain(11, 6)
        settings = get_settings("minimal")
        basis = build_basis(structure)
        grid = build_grid(structure, settings.grids, with_partition=True)
        builder = MatrixBuilder(basis, grid)
        tight = build_sparsity_pattern(basis, builder.batches, 1e-9)
        loose = build_sparsity_pattern(basis, builder.batches, 1e-4)
        for b in range(tight.n_batches):
            assert set(loose.active_functions[b]) <= set(
                tight.active_functions[b]
            )
        assert loose.stats.blocks_active <= tight.stats.blocks_active
        assert not np.any(loose.block_mask & ~tight.block_mask)


class TestHistogramDoctestNeighbour:
    def test_histogram_edge_cases(self):
        assert active_fraction_histogram([], bins=4) == (0, 0, 0, 0)
        assert active_fraction_histogram([1.0, 1.0], bins=2) == (0, 2)


class TestThresholdZeroBitIdentity:
    """threshold 0 == the dense pre-screening path, on every backend."""

    @given(seed=st.integers(0, 1000))
    @hyp_settings(max_examples=5, deadline=None)
    def test_all_backends_match_dense_bitwise(self, seed):
        structure = _chain(seed, 3)
        settings = get_settings("minimal")
        basis = build_basis(structure)
        grid = build_grid(structure, settings.grids, with_partition=True)
        reference = MatrixBuilder(basis, grid, backend="numpy")
        p, v = _probe_inputs(reference)
        density_ref = reference.backend.density_on_grid(p)
        potential_ref = reference.potential_matrix(v)
        for name in BACKENDS:
            builder = MatrixBuilder(
                basis,
                grid,
                batches=reference.batches,
                backend=name,
                screening_threshold=0.0,
            )
            assert builder.pattern is None
            np.testing.assert_array_equal(
                builder.backend.density_on_grid(p), density_ref
            )
            np.testing.assert_array_equal(
                builder.potential_matrix(v), potential_ref
            )


class TestScreenedBackendAgreement:
    @pytest.fixture(scope="class")
    def workload(self):
        structure = _chain(42, 5)
        settings = get_settings("minimal")
        basis = build_basis(structure)
        grid = build_grid(structure, settings.grids, with_partition=True)
        reference = MatrixBuilder(basis, grid, backend="numpy")
        return structure, basis, grid, reference

    def test_backends_bit_identical_to_each_other(self, workload):
        _, basis, grid, reference = workload
        p, v = _probe_inputs(reference)
        results = {}
        for name in BACKENDS:
            builder = MatrixBuilder(
                basis,
                grid,
                batches=reference.batches,
                backend=name,
                screening_threshold=DEFAULT_SCREENING_THRESHOLD,
            )
            results[name] = (
                builder.backend.density_on_grid(p),
                builder.potential_matrix(v),
            )
        d0, m0 = results["numpy"]
        for name in BACKENDS[1:]:
            np.testing.assert_array_equal(results[name][0], d0)
            np.testing.assert_array_equal(results[name][1], m0)

    def test_screened_close_to_dense(self, workload):
        _, basis, grid, reference = workload
        p, v = _probe_inputs(reference)
        screened = MatrixBuilder(
            basis,
            grid,
            batches=reference.batches,
            screening_threshold=DEFAULT_SCREENING_THRESHOLD,
        )
        d_diff = np.abs(
            screened.backend.density_on_grid(p)
            - reference.backend.density_on_grid(p)
        ).max()
        m_diff = np.abs(
            screened.potential_matrix(v) - reference.potential_matrix(v)
        ).max()
        scale = max(1.0, float(np.abs(p).max()))
        assert d_diff < 1e-4 * scale
        assert m_diff < 1e-5 * scale

    def test_kinetic_and_overlap_close_to_dense(self, workload):
        _, basis, grid, reference = workload
        screened = MatrixBuilder(
            basis,
            grid,
            batches=reference.batches,
            screening_threshold=DEFAULT_SCREENING_THRESHOLD,
        )
        assert (
            np.abs(screened.kinetic() - reference.kinetic()).max() < 1e-6
        )
        assert (
            np.abs(screened.overlap() - reference.overlap()).max() < 1e-7
        )


class TestTableCacheCompose:
    """Regression: with the full chi table cached, the screened numpy
    path must *slice* the table per batch, never re-evaluate."""

    def test_no_reevaluation_after_table_build(self, monkeypatch):
        _, screened = _builders(_chain(9, 4), DEFAULT_SCREENING_THRESHOLD)
        assert screened.table_cache_enabled
        p, v = _probe_inputs(screened)
        screened.basis_values()  # populate the table cache
        calls = {"n": 0}
        real_evaluate = screened.basis.evaluate

        def counting_evaluate(*args, **kwargs):
            calls["n"] += 1
            return real_evaluate(*args, **kwargs)

        monkeypatch.setattr(screened.basis, "evaluate", counting_evaluate)
        screened.backend.density_on_grid(p)
        screened.potential_matrix(v)
        assert calls["n"] == 0

    def test_sliced_block_equals_fresh_compact_evaluation(self):
        _, screened = _builders(_chain(9, 4), DEFAULT_SCREENING_THRESHOLD)
        pattern = screened.pattern
        table = screened.basis_values()
        for b in screened.batches[:4]:
            act = pattern.active_functions[b.index]
            fresh = screened.basis.evaluate(
                screened.grid.points[b.point_indices],
                atoms=pattern.active_atoms[b.index],
            )[:, act]
            np.testing.assert_array_equal(
                table[b.point_indices][:, act], fresh
            )

    def test_over_limit_screened_path_matches_cached(self):
        dense_c, screened_c = _builders(
            _chain(9, 4), DEFAULT_SCREENING_THRESHOLD
        )
        _, screened_s = _builders(
            _chain(9, 4), DEFAULT_SCREENING_THRESHOLD, cache_limit=0
        )
        assert not screened_s.table_cache_enabled
        p, v = _probe_inputs(screened_c)
        np.testing.assert_array_equal(
            screened_c.backend.density_on_grid(p),
            screened_s.backend.density_on_grid(p),
        )
        np.testing.assert_array_equal(
            screened_c.potential_matrix(v), screened_s.potential_matrix(v)
        )


class TestBatchedLRUKeys:
    def test_screened_keys_carry_the_active_set_hash(self):
        _, screened = _builders(
            _chain(5, 4), DEFAULT_SCREENING_THRESHOLD, backend="batched"
        )
        p, _ = _probe_inputs(screened)
        screened.backend.density_on_grid(p)
        keys = list(screened.backend.cache._blocks.keys())
        assert keys, "batched backend cached no blocks"
        assert all(isinstance(k, tuple) and len(k) == 2 for k in keys)
        hashes = {screened.pattern.active_hash(i) for i, _ in enumerate(
            screened.batches
        )}
        assert {h for _, h in keys} <= hashes

    def test_second_sweep_hits_the_cache(self):
        _, screened = _builders(
            _chain(5, 4), DEFAULT_SCREENING_THRESHOLD, backend="batched"
        )
        p, _ = _probe_inputs(screened)
        first = screened.backend.density_on_grid(p)
        profile = screened.backend.profile.as_dict()["cache"]
        misses_after_first = profile["misses"]
        second = screened.backend.density_on_grid(p)
        profile = screened.backend.profile.as_dict()["cache"]
        np.testing.assert_array_equal(first, second)
        assert profile["misses"] == misses_after_first
        assert profile["hits"] >= len(screened.batches)

    def test_distinct_thresholds_produce_distinct_keys(self):
        structure = _chain(5, 10)
        settings = get_settings("minimal")
        basis = build_basis(structure)
        grid = build_grid(structure, settings.grids, with_partition=True)
        builder = MatrixBuilder(basis, grid)
        tight = build_sparsity_pattern(basis, builder.batches, 1e-9)
        loose = build_sparsity_pattern(basis, builder.batches, 1e-2)
        differing = [
            b
            for b in range(tight.n_batches)
            if tight.n_active(b) != loose.n_active(b)
        ]
        assert differing, "thresholds produced identical active sets"
        for b in differing:
            assert tight.active_hash(b) != loose.active_hash(b)


class TestScreeningCounters:
    def test_profile_records_screening_activity(self):
        _, screened = _builders(_chain(21, 5), DEFAULT_SCREENING_THRESHOLD)
        p, v = _probe_inputs(screened)
        screened.backend.density_on_grid(p)
        screened.potential_matrix(v)
        doc = screened.backend.profile.as_dict()["sparsity"]
        stats = screened.pattern.stats
        # Two screened phase passes, each touching every batch once.
        assert doc["blocks_evaluated"] == 2 * stats.blocks_active
        assert (
            doc["blocks_evaluated"] + doc["blocks_skipped"]
            == 2 * stats.blocks_dense
        )
        assert doc["fill_fraction"] == pytest.approx(stats.fill_fraction)
        assert tuple(doc["histogram"]) == stats.histogram
        assert doc["elements_active"] > 0

    def test_dense_profile_reports_no_screening(self):
        dense, _ = _builders(_chain(21, 5), DEFAULT_SCREENING_THRESHOLD)
        p, _ = _probe_inputs(dense)
        dense.backend.density_on_grid(p)
        doc = dense.backend.profile.as_dict()["sparsity"]
        assert doc["blocks_evaluated"] == 0
        assert doc["fill_fraction"] == 0.0


class TestModeledBlockCounts:
    def test_polymer_reduction_grows_with_chain_length(self):
        short = modeled_block_counts(polyethylene(8))
        long = modeled_block_counts(polyethylene(32))
        assert short["block_reduction"] > 1.0
        assert long["block_reduction"] > short["block_reduction"]
        assert long["fill_fraction"] < short["fill_fraction"]

    def test_active_blocks_scale_linearly_not_quadratically(self):
        a = modeled_block_counts(polyethylene(16))
        b = modeled_block_counts(polyethylene(32))
        dense_ratio = b["blocks_dense"] / a["blocks_dense"]
        active_ratio = b["blocks_active"] / a["blocks_active"]
        assert dense_ratio > 3.5  # ~4x: both factors doubled
        assert active_ratio < 2.5  # ~2x: locality keeps it linear

    def test_counts_match_a_real_pattern_shape(self):
        doc = modeled_block_counts(polyethylene(4), threshold=1e-6)
        assert doc["n_atoms"] == 26
        assert doc["blocks_dense"] == doc["n_batches"] * doc["n_atoms"]
        assert 0.0 < doc["fill_fraction"] <= 1.0
        assert doc["threshold"] == 1e-6

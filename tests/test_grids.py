"""Angular rules, radial shells, Becke partitioning, grids and batching."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.atoms import hydrogen_molecule, water
from repro.config import get_settings
from repro.errors import GridError
from repro.grids import (
    angular_rule,
    attach_relevant_atoms,
    becke_weights,
    build_batches,
    build_grid,
    cut_plane_partition,
    radial_shells_for_species,
)
from repro.grids.batching import _attach_relevant_atoms_celllist


class TestAngularRules:
    @pytest.mark.parametrize("n", [6, 14, 26, 50, 110, 194])
    def test_weights_sum_to_4pi(self, n):
        rule = angular_rule(n)
        assert rule.n_points >= n
        assert rule.weights.sum() == pytest.approx(4 * np.pi, rel=1e-12)

    @pytest.mark.parametrize("n", [6, 14, 26, 50, 110])
    def test_points_on_unit_sphere(self, n):
        rule = angular_rule(n)
        assert np.allclose(np.linalg.norm(rule.points, axis=1), 1.0, atol=1e-12)

    def test_integrates_polynomials_exactly(self):
        # int x^2 dOmega = 4 pi / 3 (degree 2 <= any rule's exactness).
        for n in (6, 26, 50):
            rule = angular_rule(n)
            val = rule.integrate(rule.points[:, 0] ** 2)
            assert val == pytest.approx(4 * np.pi / 3, rel=1e-12)

    def test_integrate_shape_check(self):
        rule = angular_rule(6)
        with pytest.raises(GridError):
            rule.integrate(np.zeros(7))

    def test_bad_request(self):
        with pytest.raises(GridError):
            angular_rule(0)


class TestRadialShells:
    def test_monotone_positive_weights(self):
        s = radial_shells_for_species(8, 24)
        assert np.all(np.diff(s.r) > 0)
        assert np.all(s.weights > 0)
        assert s.r[-1] == pytest.approx(10.0)

    def test_heavier_species_get_more_shells(self):
        assert radial_shells_for_species(16, 24).n > radial_shells_for_species(1, 24).n

    def test_integrates_gaussian_moment(self):
        s = radial_shells_for_species(1, 60, r_outer=12.0)
        # int_0^inf e^{-r^2} r^2 dr = sqrt(pi)/4.
        val = np.sum(s.weights * np.exp(-s.r**2))
        assert val == pytest.approx(np.sqrt(np.pi) / 4, rel=1e-4)

    def test_validation(self):
        with pytest.raises(GridError):
            radial_shells_for_species(1, 3)
        with pytest.raises(GridError):
            radial_shells_for_species(1, 24, r_outer=-1.0)


class TestBeckeWeights:
    def test_single_atom_weight_is_one(self):
        h2 = hydrogen_molecule().subset([0])
        pts = np.array([[0.0, 0.0, 1.0]])
        assert becke_weights(h2, pts, 0)[0] == pytest.approx(1.0)

    def test_partition_of_unity(self, rng):
        w = water()
        pts = rng.normal(size=(40, 3)) * 1.5
        total = sum(becke_weights(w, pts, a) for a in range(3))
        assert np.allclose(total, 1.0, atol=1e-10)

    def test_weight_near_own_nucleus_dominates(self):
        h2 = hydrogen_molecule()
        near0 = h2.coords[0] + np.array([[0.0, 0.0, -0.05]])
        assert becke_weights(h2, near0, 0)[0] > 0.99

    def test_midpoint_symmetric(self):
        h2 = hydrogen_molecule()
        mid = 0.5 * (h2.coords[0] + h2.coords[1])[None, :]
        w0 = becke_weights(h2, mid, 0)[0]
        w1 = becke_weights(h2, mid, 1)[0]
        assert w0 == pytest.approx(w1) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(GridError):
            becke_weights(water(), np.zeros((1, 3)), 5)
        with pytest.raises(GridError):
            becke_weights(water(), np.zeros((1, 3)), 0, smoothing=0)


class TestIntegrationGrid:
    def test_gaussian_integral(self, minimal_settings):
        grid = build_grid(water(), minimal_settings.grids, with_partition=True)
        val = np.zeros(grid.n_points)
        for c in water().coords:
            val += np.exp(-((grid.points - c) ** 2).sum(axis=1))
        total = grid.integrate(val)
        assert total == pytest.approx(3 * np.pi**1.5, rel=2e-2)

    def test_weights_require_partition(self, minimal_settings):
        grid = build_grid(water(), minimal_settings.grids)
        with pytest.raises(GridError):
            _ = grid.weights
        grid.compute_partition_weights()
        assert grid.weights.shape == (grid.n_points,)

    def test_points_of_atom(self, minimal_settings):
        grid = build_grid(water(), minimal_settings.grids)
        counted = sum(len(grid.points_of_atom(a)) for a in range(3))
        assert counted == grid.n_points

    def test_angular_weight_shell_sum(self, minimal_settings):
        grid = build_grid(hydrogen_molecule(), minimal_settings.grids)
        sel = (grid.atom_index == 0) & (grid.shell_index == 3)
        assert grid.angular_weights[sel].sum() == pytest.approx(4 * np.pi, rel=1e-12)


class TestBatching:
    def test_partition_covers_exactly(self, rng):
        pts = rng.normal(size=(1000, 3))
        groups = cut_plane_partition(pts, 64)
        all_idx = np.concatenate(groups)
        assert sorted(all_idx.tolist()) == list(range(1000))
        assert all(len(g) <= 64 for g in groups)

    @given(n=st.integers(10, 400), target=st.integers(1, 80))
    @settings(max_examples=25, deadline=None)
    def test_partition_coverage_property(self, n, target):
        rng = np.random.default_rng(n * 1000 + target)
        pts = rng.normal(size=(n, 3))
        groups = cut_plane_partition(pts, target)
        got = np.sort(np.concatenate(groups))
        assert np.array_equal(got, np.arange(n))
        assert max(len(g) for g in groups) <= target

    def test_batches_spatially_compact(self, minimal_settings):
        grid = build_grid(water(), minimal_settings.grids)
        batches = build_batches(grid, target_points=100)
        # Batches are spatially compact: cut-plane groups must be far
        # tighter than random groups of the same size.
        rng = np.random.default_rng(0)
        cut_radii = []
        rand_radii = []
        for b in batches:
            pts = grid.points[b.point_indices]
            cut_radii.append(np.linalg.norm(pts - pts.mean(0), axis=1).mean())
            rnd = grid.points[rng.choice(grid.n_points, size=b.n_points, replace=False)]
            rand_radii.append(np.linalg.norm(rnd - rnd.mean(0), axis=1).mean())
        # Outer shells are intrinsically wide on this tiny molecule, so
        # the advantage is moderate but must be systematic.
        assert np.mean(cut_radii) < 0.8 * np.mean(rand_radii)
        assert np.median(cut_radii) < np.median(rand_radii)

    def test_batch_sizes_and_metadata(self, minimal_settings):
        grid = build_grid(water(), minimal_settings.grids)
        batches = build_batches(grid, target_points=128)
        assert all(1 <= b.n_points <= 128 for b in batches)
        assert all(len(b.owner_atoms) >= 1 for b in batches)

    def test_attach_relevant_atoms_superset_of_owners(self, minimal_settings):
        w = water()
        grid = build_grid(w, minimal_settings.grids)
        batches = build_batches(grid, target_points=128)
        cut = np.full(3, 9.0)
        batches = attach_relevant_atoms(batches, w, cut)
        for b in batches:
            assert set(b.owner_atoms) <= set(b.relevant_atoms)

    def test_celllist_matches_dense_path(self, minimal_settings):
        w = water()
        grid = build_grid(w, minimal_settings.grids)
        batches = build_batches(grid, target_points=128)
        cut = np.full(3, 6.5)
        dense = attach_relevant_atoms(batches, w, cut)
        cells = _attach_relevant_atoms_celllist(batches, w, cut)
        for a, b in zip(dense, cells):
            assert a.relevant_atoms == b.relevant_atoms

    def test_invalid_target(self, rng):
        with pytest.raises(GridError):
            cut_plane_partition(rng.normal(size=(10, 3)), 0)

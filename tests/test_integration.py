"""Cross-module integration: the full Fig. 1 cycle and model pipeline."""

import numpy as np
import pytest

from repro.atoms import hydrogen_molecule, methane
from repro.config import get_settings
from repro.dfpt import DFPTSolver, polarizability_anisotropy
from repro.dft import MatrixBuilder, SCFDriver
from repro.experiments import run_fig14_overall, run_fig15b_time_per_cycle


class TestPhysicsConsistency:
    def test_hartree_solver_consistent_with_direct_coulomb(self, h2_ground_state):
        """Multipole v_H reproduces the direct double-sum Coulomb energy."""
        gs = h2_ground_state
        w = gs.grid.weights
        pts = gs.grid.points
        n = gs.density
        v_h = gs.solver.hartree_potential(n)
        e_multipole = 0.5 * float(np.sum(w * n * v_h))

        # Direct O(N^2) reference on the same quadrature (diagonal
        # excluded; its contribution is part of quadrature error).
        diff = pts[:, None, :] - pts[None, :, :]
        dist = np.linalg.norm(diff, axis=2)
        np.fill_diagonal(dist, np.inf)
        e_direct = 0.5 * float((w * n) @ (1.0 / dist) @ (w * n))
        assert e_multipole == pytest.approx(e_direct, rel=0.05)

    def test_virial_ratio_reasonable(self, water_ground_state):
        """-V/T ~ 2 for a near-variational all-electron solution."""
        gs = water_ground_state
        t = gs.energy_components["kinetic"]
        v = (
            gs.energy_components["external"]
            + gs.energy_components["hartree"]
            + gs.energy_components["xc"]
            + gs.energy_components["nuclear"]
        )
        assert 1.8 < -v / t < 2.2

    def test_koopmans_scale(self, water_ground_state):
        """HOMO eigenvalue ~ -(IP): water IP ~ 12.6 eV; LDA underestimates."""
        homo_ev = water_ground_state.eigenvalues[4] * 27.2114
        assert -16.0 < homo_ev < -4.0

    def test_methane_isotropy(self, minimal_settings):
        """Td symmetry: polarizability tensor ~ isotropic."""
        gs = SCFDriver(methane(), minimal_settings).run()
        solver = DFPTSolver(gs, minimal_settings.cpscf)
        alpha = np.empty((3, 3))
        for j in range(3):
            alpha[:, j] = solver.solve_direction(j).polarizability_column(gs.dipoles)
        assert polarizability_anisotropy(alpha) < 0.05 * np.trace(alpha) / 3

    def test_response_potential_linear_in_field(self, h2_ground_state):
        """P^(1) along +z equals -P^(1) along -z by linearity (via x/y/z)."""
        solver = DFPTSolver(h2_ground_state)
        rz = solver.solve_direction(2)
        # Reverse-field response equals the negative (linearity).
        h1 = -h2_ground_state.dipoles[2]
        _, _, p1 = solver._first_order_dm(-h1)
        _, _, p1_pos = solver._first_order_dm(h1)
        assert np.allclose(p1, -p1_pos, atol=1e-12)
        assert rz.response_density_matrix.shape == p1.shape


class TestModelPipeline:
    def test_fig14_small_case(self):
        result = run_fig14_overall(cases=(("RBD/64@HPC1", "rbd", "hpc1", 64),))
        case = result.cases[0]
        assert case.overall_speedup > 1.5
        assert case.before.memory_per_rank_bytes > case.after.memory_per_rank_bytes
        assert "TOTAL" in result.render()

    def test_fig15b_cycle_under_a_minute(self):
        result = run_fig15b_time_per_cycle(cases=((15002, 1024),))
        _, _, phases, total = result.rows[0]
        assert total < 60.0
        assert set(phases) == {"DM", "Sumup", "Rho", "H", "Comm"}


class TestBuilderReuse:
    def test_matrix_builder_accepts_prebuilt_batches(self, minimal_settings):
        from repro.basis import build_basis
        from repro.grids import build_batches, build_grid

        h2 = hydrogen_molecule()
        basis = build_basis(h2)
        grid = build_grid(h2, minimal_settings.grids, with_partition=True)
        batches = build_batches(grid)
        builder = MatrixBuilder(basis, grid, batches=batches)
        s = builder.overlap()
        builder2 = MatrixBuilder(basis, grid)
        assert np.allclose(s, builder2.overlap(), atol=1e-12)

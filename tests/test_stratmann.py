"""Stratmann partition weights."""

import numpy as np
import pytest

from repro.atoms import hydrogen_molecule, water
from repro.errors import GridError
from repro.grids.stratmann import STRATMANN_A, stratmann_switch, stratmann_weights


class TestSwitch:
    def test_endpoints_and_saturation(self):
        assert stratmann_switch(np.array([-STRATMANN_A]))[0] == pytest.approx(-1.0)
        assert stratmann_switch(np.array([STRATMANN_A]))[0] == pytest.approx(1.0)
        assert stratmann_switch(np.array([5.0]))[0] == 1.0  # exact saturation
        assert stratmann_switch(np.array([-5.0]))[0] == -1.0

    def test_odd_function(self, rng):
        mu = rng.uniform(-1, 1, 50)
        assert np.allclose(stratmann_switch(mu), -stratmann_switch(-mu))

    def test_monotone(self):
        mu = np.linspace(-1.2, 1.2, 200)
        g = stratmann_switch(mu)
        assert np.all(np.diff(g) >= -1e-12)


class TestWeights:
    def test_partition_of_unity(self, rng):
        w = water()
        pts = rng.normal(size=(40, 3)) * 1.5
        total = sum(stratmann_weights(w, pts, a) for a in range(3))
        assert np.allclose(total, 1.0, atol=1e-10)

    def test_exact_compact_support(self):
        """Near one nucleus, the other atom's weight is exactly zero —
        the property Becke weights lack."""
        h2 = hydrogen_molecule()
        near0 = h2.coords[0] + np.array([[0.0, 0.0, -0.02]])
        w1 = stratmann_weights(h2, near0, 1)
        assert w1[0] == 0.0  # exact zero, not just small
        w0 = stratmann_weights(h2, near0, 0)
        assert w0[0] == 1.0

    def test_midpoint_symmetric(self):
        h2 = hydrogen_molecule()
        mid = 0.5 * (h2.coords[0] + h2.coords[1])[None, :]
        assert stratmann_weights(h2, mid, 0)[0] == pytest.approx(0.5)

    def test_single_atom(self):
        h = hydrogen_molecule().subset([0])
        assert stratmann_weights(h, np.ones((1, 3)), 0)[0] == 1.0

    def test_validation(self):
        with pytest.raises(GridError):
            stratmann_weights(water(), np.zeros((1, 3)), 7)

    def test_integration_agrees_with_becke(self, minimal_settings):
        """Both partitions integrate a smooth function to the same value."""
        from repro.grids import build_grid

        w = water()
        grid = build_grid(w, minimal_settings.grids)
        val = np.zeros(grid.n_points)
        for c in w.coords:
            val += np.exp(-((grid.points - c) ** 2).sum(axis=1))

        weights_s = np.empty(grid.n_points)
        for atom in range(3):
            sel = grid.atom_index == atom
            weights_s[sel] = stratmann_weights(w, grid.points[sel], atom)
        total_s = float(np.sum(grid.quadrature_weights * weights_s * val))

        grid.compute_partition_weights()
        total_b = float(np.sum(grid.weights * val))
        assert total_s == pytest.approx(total_b, rel=5e-3)

"""Golden snapshots: committed records, guarded regeneration."""

import numpy as np
import pytest

from repro.atoms import hydrogen_molecule
from repro.errors import GoldenUpdateError, VerificationError
from repro.verify import (
    GOLDEN_MOLECULES,
    compare_to_golden,
    compute_golden_record,
    golden_path,
    load_golden,
    save_golden,
    verify_golden,
)
from repro.verify.golden import FIELD_TOLERANCES, GOLDEN_DIR


class TestCommittedGoldens:
    @pytest.mark.parametrize("name", sorted(GOLDEN_MOLECULES))
    def test_golden_exists_and_loads(self, name):
        assert golden_path(name).exists()
        record = load_golden(name)
        assert set(FIELD_TOLERANCES) <= set(record)
        assert record["overlap"].ndim == 2
        assert record["polarizability"].shape == (3, 3)

    def test_h2_recomputation_matches_golden(self):
        report = verify_golden("h2")
        assert report.ok, report.render()
        assert len(report.results) == len(FIELD_TOLERANCES)

    def test_unknown_molecule_rejected(self):
        with pytest.raises(VerificationError, match="unknown golden molecule"):
            verify_golden("benzene")

    def test_missing_golden_names_the_fix(self, tmp_path):
        with pytest.raises(VerificationError, match="--update-golden"):
            load_golden("h2", directory=tmp_path)


class TestRegressionDetection:
    @pytest.fixture(scope="class")
    def h2_record(self):
        return compute_golden_record(hydrogen_molecule(), level="minimal")

    def test_tampered_field_is_named(self, h2_record):
        record = dict(h2_record)
        record["total_energy"] = record["total_energy"] + 1e-3
        report = compare_to_golden("h2", record)
        assert not report.ok
        assert report.failed_names == ["golden:h2/total_energy"]

    def test_shape_change_is_named(self, h2_record):
        record = dict(h2_record)
        record["eigenvalues"] = np.zeros(1)
        report = compare_to_golden("h2", record)
        failed = set(report.failed_names)
        assert "golden:h2/eigenvalues" in failed
        detail = {r.name: r.detail for r in report.failures}
        assert "shape" in detail["golden:h2/eigenvalues"]

    def test_within_tolerance_noise_passes(self, h2_record):
        record = dict(h2_record)
        record["density_matrix"] = record["density_matrix"] + 1e-9
        assert compare_to_golden("h2", record).ok


class TestUpdateGuard:
    def test_save_refuses_without_opt_in(self, tmp_path):
        record = load_golden("h2")
        with pytest.raises(GoldenUpdateError, match="--run-golden-update"):
            save_golden("h2", record, directory=tmp_path)
        assert not (tmp_path / "h2.npz").exists()

    def test_committed_dir_is_never_the_implicit_target(self):
        # The guard triggers before any path is opened, including the
        # committed package-data directory.
        record = load_golden("h2")
        mtime = golden_path("h2").stat().st_mtime_ns
        with pytest.raises(GoldenUpdateError):
            save_golden("h2", record)
        assert golden_path("h2").stat().st_mtime_ns == mtime
        assert GOLDEN_DIR.name == "golden_data"

    def test_loaded_record_can_be_resaved(self, tmp_path):
        """load_golden includes the meta keys; save_golden must strip
        them instead of colliding with its own level/molecule kwargs."""
        record = load_golden("h2")
        save_golden("h2", record, directory=tmp_path, allow_update=True)
        assert compare_to_golden("h2", load_golden("h2", directory=tmp_path)).ok

    def test_incomplete_record_rejected_even_with_opt_in(self, tmp_path):
        with pytest.raises(VerificationError, match="lacks fields"):
            save_golden(
                "h2",
                {"total_energy": np.array(0.0)},
                directory=tmp_path,
                allow_update=True,
            )

    def test_update_roundtrip(self, tmp_path, golden_update_enabled):
        """Only runs under ``pytest --run-golden-update``: regenerates a
        golden into a temp dir and verifies the roundtrip is exact."""
        record = compute_golden_record(hydrogen_molecule(), level="minimal")
        path = save_golden("h2", record, directory=tmp_path, allow_update=True)
        assert path.exists()
        report = compare_to_golden("h2", record, directory=tmp_path)
        assert report.ok
        assert all(r.residual == 0.0 for r in report.results)

"""Shape assertions on the figure generators (small sweeps).

These encode the paper's qualitative claims: who wins, how the gap
moves with scale, where the hard limits (RMA window, SHM availability)
bite.  The full sweeps live in benchmarks/.
"""

import numpy as np
import pytest

from repro.experiments import (
    run_beyond200k,
    run_fig09a_memory,
    run_fig09b_dense_access,
    run_fig09c_splines,
    run_fig10_allreduce,
    run_fig11_indirect,
    run_fig12a_volumes,
    run_fig12b_horizontal,
    run_fig13_collapse,
    run_fig15_strong,
    run_fig16_weak,
)
from repro.runtime import HPC1_SUNWAY, HPC2_AMD

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


class TestFig09:
    def test_memory_two_regimes(self):
        r = run_fig09a_memory(ranks=(64, 256))
        # Existing: flat replicated CSR; proposed: smaller, decreasing.
        assert r.existing_kb[0] == r.existing_kb[1]
        assert r.proposed_avg_kb[1] < r.proposed_avg_kb[0]
        assert r.proposed_avg_kb[0] < r.existing_kb[0] / 5
        assert "Fig 9(a)" in r.render()

    def test_dense_access_gains_positive(self):
        r = run_fig09b_dense_access()
        imps = r.improvements()
        assert len(imps) == 4
        for (machine, phase), gain in imps.items():
            assert gain > 0.0, f"{machine}/{phase} should gain from dense access"
        # HPC#1 gains exceed HPC#2's (latency-bound CPEs).
        assert imps[("HPC#1", "n(1)")] > imps[("HPC#2", "n(1)")]

    def test_spline_counts_drop(self):
        r = run_fig09c_splines(n_ranks=128)
        assert r.proposed_counts.mean() < r.existing_counts.mean() / 4
        assert r.proposed_counts.sum() < r.existing_counts.sum()


class TestFig10:
    def test_hpc1_has_no_hierarchical(self):
        r = run_fig10_allreduce(HPC1_SUNWAY, sweeps={30002: (256, 1024)})
        schemes = {s for _, _, s, _, _ in r.rows}
        assert schemes == {"baseline", "packed"}

    def test_hpc2_hierarchy_wins(self):
        r = run_fig10_allreduce(HPC2_AMD, sweeps={30002: (1024, 4096)})
        packed = r.speedups("packed")
        hier = r.speedups("packed_hierarchical")
        for key in packed:
            assert hier[key] > packed[key] > 1.0

    def test_speedups_grow_with_ranks(self):
        r = run_fig10_allreduce(HPC2_AMD, sweeps={30002: (256, 4096)})
        sp = r.speedups("packed")
        assert sp[(30002, 4096)] > sp[(30002, 256)]


class TestFig11:
    def test_hpc1_gains_exceed_hpc2(self):
        r = run_fig11_indirect(sweep={30002: (256, 1024)})
        s1 = r.speedups("HPC#1")
        s2 = r.speedups("HPC#2")
        assert min(s1) > max(s2)
        assert all(s > 1.0 for s in s2)

    def test_gains_in_paper_band(self):
        r = run_fig11_indirect(sweep={30002: (256,)})
        assert 3.0 < max(r.speedups("HPC#1")) < 9.0  # paper: up to 6.2x
        assert 1.2 < max(r.speedups("HPC#2")) < 6.0  # paper: up to 3.9x


class TestFig12:
    def test_rma_gate(self):
        r = run_fig12a_volumes()
        assert r.vertical_applied["rho_multipole_spl"]
        assert not r.vertical_applied["delta_v_hart_part_spl"]
        assert r.volumes["delta_v_hart_part_spl"] > r.rma_limit

    def test_volumes_near_paper_values(self):
        r = run_fig12a_volumes()
        # Paper: ~28 KB and ~498 KB.
        assert 15 * 1024 < r.volumes["rho_multipole_spl"] < 60 * 1024
        assert 300 * 1024 < r.volumes["delta_v_hart_part_spl"] < 900 * 1024

    def test_horizontal_speedup_grows_with_ranks(self):
        r = run_fig12b_horizontal(sweep={30002: (256, 4096)})
        sp = r.speedups()
        assert sp[1] > sp[0] > 1.0
        assert sp[1] < 4.0  # paper tops out at 2.4x


class TestFig13:
    def test_collapse_speedup_in_band_and_growing(self):
        r = run_fig13_collapse(sweep={30002: (256, 4096)})
        sp = r.speedups()
        assert 1.0 < sp[0] < sp[1] < 1.6  # paper: 1.01 - 1.34


class TestFig1516:
    def test_strong_scaling_monotone(self):
        r = run_fig15_strong(
            n_atoms=30002, ranks_hpc1=(2048, 4096), ranks_hpc2=(1024, 2048)
        )
        for s in r.series:
            assert s.cycle_seconds[1] < s.cycle_seconds[0]
            eff = s.efficiencies()[-1]
            assert 0.3 < eff <= 1.05

    def test_weak_scaling_efficiency_declines(self):
        r = run_fig16_weak(cases=((30002, 2500, 2048), (60002, 5000, 4096)))
        for s in r.series:
            eff = s.efficiencies()
            assert eff[0] == pytest.approx(1.0)
            assert 0.4 < eff[1] <= 1.05


class TestBeyond200k:
    def test_defaults_extend_past_the_paper_ceiling(self):
        from repro.experiments.beyond200k import (
            BEYOND_CASES_FULL,
            BEYOND_CASES_QUICK,
            PAPER_CEILING_ATOMS,
        )
        assert max(BEYOND_CASES_QUICK) > PAPER_CEILING_ATOMS
        assert max(BEYOND_CASES_FULL) >= 1_000_000

    def test_blocks_per_atom_stays_flat(self):
        r = run_beyond200k(atom_counts=(602, 1202, 3002))
        assert r.max_atoms == 3002
        assert r.linearity() < 0.05
        reductions = [p.block_reduction for p in r.points]
        assert reductions == sorted(reductions)
        assert all(p.blocks_active < p.blocks_dense for p in r.points)

    def test_render_marks_points_past_the_ceiling(self):
        r = run_beyond200k(atom_counts=(602,))
        table = r.render()
        assert "602" in table and "Fig. 16" in table
        assert "602 *" not in table  # 602 is below the ceiling

"""Cube export/import and SCF checkpointing."""

import io

import numpy as np
import pytest

from repro.atoms import hydrogen_molecule, water
from repro.dft.checkpoint import (
    CheckpointError,
    geometry_fingerprint,
    load_ground_state_arrays,
    save_ground_state,
)
from repro.dft.cube import cube_grid, export_density_cube, read_cube, write_cube
from repro.dft.density import density_on_grid
from repro.errors import GridError


class TestCube:
    def test_grid_covers_molecule(self):
        origin, points, shape = cube_grid(water(), spacing=0.8, padding=2.0)
        lo, hi = water().bounding_box()
        assert np.all(points.min(axis=0) <= lo)
        assert np.all(points.max(axis=0) >= hi)
        assert points.shape == (shape[0] * shape[1] * shape[2], 3)

    def test_roundtrip(self):
        w = water()
        origin, points, shape = cube_grid(w, spacing=1.5, padding=1.0)
        values = np.exp(-np.linalg.norm(points, axis=1))
        buf = io.StringIO()
        write_cube(buf, w, values, origin, shape, 1.5, comment="test")
        buf.seek(0)
        back_structure, back_values, back_origin, back_shape, back_spacing = read_cube(buf)
        assert back_structure.symbols == w.symbols
        assert back_shape == shape
        assert back_spacing == pytest.approx(1.5)
        assert np.allclose(back_values.ravel(), values, rtol=1e-4)

    def test_export_real_density(self, h2_ground_state):
        gs = h2_ground_state

        def density_fn(points):
            phi = gs.basis.evaluate(points)
            return np.einsum("pi,pi->p", phi @ gs.density_matrix, phi)

        buf = io.StringIO()
        shape = export_density_cube(buf, gs.structure, density_fn, spacing=1.0)
        _, values, *_ = read_cube(io.StringIO(buf.getvalue()))
        assert values.shape == shape
        assert values.max() > 0.01  # density peaks at the nuclei

    def test_bad_density_fn_shape(self):
        with pytest.raises(GridError):
            export_density_cube(
                io.StringIO(), water(), lambda pts: np.zeros((3, 3)), spacing=2.0
            )

    def test_validation(self):
        with pytest.raises(GridError):
            cube_grid(water(), spacing=0.0)


class TestCheckpoint:
    def test_fingerprint_sensitive_to_geometry(self):
        a = geometry_fingerprint(hydrogen_molecule())
        b = geometry_fingerprint(hydrogen_molecule(bond_length=1.5))
        c = geometry_fingerprint(hydrogen_molecule())
        assert a != b and a == c

    def test_save_load_roundtrip(self, h2_ground_state, tmp_path):
        path = tmp_path / "h2.npz"
        save_ground_state(path, h2_ground_state)
        data = load_ground_state_arrays(path, h2_ground_state.structure)
        assert data["total_energy"] == pytest.approx(h2_ground_state.total_energy)
        assert np.allclose(data["density_matrix"], h2_ground_state.density_matrix)
        assert np.allclose(data["eigenvalues"], h2_ground_state.eigenvalues)

    def test_wrong_geometry_rejected(self, h2_ground_state, tmp_path):
        path = tmp_path / "h2.npz"
        save_ground_state(path, h2_ground_state)
        with pytest.raises(CheckpointError, match="different geometry"):
            load_ground_state_arrays(path, water())

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_ground_state_arrays(tmp_path / "nope.npz", water())

"""Reduction schemes: numerical equality and cost-model shape."""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import (
    BaselineRowwiseAllreduce,
    PackedAllreduce,
    PackedHierarchicalAllreduce,
    PACK_LIMIT_BYTES,
    rows_per_pack,
)
from repro.errors import CommunicationError
from repro.runtime import HPC1_SUNWAY, HPC2_AMD, SimCluster

ROW_BYTES = 34 * 49 * 8  # shells x lm x float64 — one rho_multipole row


def _serial_sum(buffers):
    """Rank-ascending accumulation — the collectives' exact order."""
    out = buffers[0].copy()
    for b in buffers[1:]:
        out = out + b
    return out


class TestPacking:
    def test_rows_per_pack_respects_limit(self):
        assert rows_per_pack(ROW_BYTES) * ROW_BYTES <= PACK_LIMIT_BYTES
        assert rows_per_pack(PACK_LIMIT_BYTES + 1) == 1  # at least one row

    def test_rows_per_pack_validation(self):
        with pytest.raises(CommunicationError):
            rows_per_pack(0)

    def test_paper_rows_cap(self):
        scheme = PackedAllreduce()
        rep = scheme.estimate(HPC1_SUNWAY, 256, 30002, ROW_BYTES)
        # "packing every 512 MPIAllReduce invocations into one".
        assert rep.n_collectives == -(-30002 // 512)


class TestNumericalEquivalence:
    @pytest.mark.parametrize(
        "scheme_cls", [BaselineRowwiseAllreduce, PackedAllreduce]
    )
    def test_matches_plain_sum_hpc1(self, scheme_cls, rng):
        cl = SimCluster(HPC1_SUNWAY, 12)
        data = [rng.normal(size=(25, 9)) for _ in range(12)]
        scheme = scheme_cls() if scheme_cls is BaselineRowwiseAllreduce else scheme_cls(rows_cap=6)
        out, rep = scheme.reduce(cl, data)
        assert np.array_equal(out, sum(data[1:], data[0].copy()))
        assert rep.n_ranks == 12

    def test_hierarchical_matches_sum(self, rng):
        cl = SimCluster(HPC2_AMD, 64)
        data = [rng.normal(size=(30, 5)) for _ in range(64)]
        out, rep = PackedHierarchicalAllreduce(rows_cap=10).reduce(cl, data)
        assert np.allclose(out, np.sum(data, axis=0), atol=1e-11)
        assert rep.local_update_time > 0

    @given(p=st.integers(2, 16), rows=st.integers(1, 30), cap=st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_packed_equals_baseline_bitwise(self, p, rows, cap):
        """Packing must not change reduction results at all."""
        rng = np.random.default_rng(p + rows * 100 + cap * 10000)
        data = [rng.normal(size=(rows, 4)) for _ in range(p)]
        cl = SimCluster(HPC1_SUNWAY, p)
        out_b, _ = BaselineRowwiseAllreduce().reduce(cl, data)
        out_p, _ = PackedAllreduce(rows_cap=cap).reduce(cl, data)
        assert np.array_equal(out_b, out_p)

    def test_hierarchical_requires_shm(self, rng):
        cl = SimCluster(HPC1_SUNWAY, 12)
        data = [rng.normal(size=(4, 4)) for _ in range(12)]
        with pytest.raises(CommunicationError):
            PackedHierarchicalAllreduce().reduce(cl, data)
        with pytest.raises(CommunicationError):
            PackedHierarchicalAllreduce().estimate(HPC1_SUNWAY, 12, 4, 64)

    def test_input_validation(self, rng):
        cl = SimCluster(HPC1_SUNWAY, 4)
        with pytest.raises(CommunicationError):
            BaselineRowwiseAllreduce().reduce(cl, [np.zeros((3, 3))] * 3)
        with pytest.raises(CommunicationError):
            BaselineRowwiseAllreduce().reduce(cl, [np.zeros(3)] * 4)


class TestCollectiveProperties:
    """SimComm collectives are bit-exact with serial numpy references
    across random rank counts, dtypes and machine shapes."""

    DTYPES = (np.float32, np.float64, np.complex128, np.int64)

    @staticmethod
    def _buffers(rng, p, n, dtype):
        if np.issubdtype(dtype, np.integer):
            return [rng.integers(-1000, 1000, size=n).astype(dtype) for _ in range(p)]
        if np.issubdtype(dtype, np.complexfloating):
            return [
                (rng.normal(size=n) + 1j * rng.normal(size=n)).astype(dtype)
                for _ in range(p)
            ]
        return [rng.normal(size=n).astype(dtype) for _ in range(p)]

    @given(
        p=st.integers(1, 24),
        n=st.integers(1, 60),
        dtype_i=st.integers(0, 3),
        base_i=st.integers(0, 1),
        procs_per_node=st.integers(1, 9),
        seed=st.integers(0, 2**20),
    )
    @settings(max_examples=60, deadline=None)
    def test_allreduce_bitwise_equals_serial(
        self, p, n, dtype_i, base_i, procs_per_node, seed
    ):
        dtype = self.DTYPES[dtype_i]
        machine = replace(
            (HPC1_SUNWAY, HPC2_AMD)[base_i], procs_per_node=procs_per_node
        )
        rng = np.random.default_rng(seed)
        bufs = self._buffers(rng, p, n, dtype)
        out = SimCluster(machine, p).comm().allreduce(bufs)
        ref = _serial_sum(bufs)
        assert out.dtype == ref.dtype
        assert np.array_equal(out, ref)

    @given(p=st.integers(1, 16), n=st.integers(1, 40), seed=st.integers(0, 2**20))
    @settings(max_examples=25, deadline=None)
    def test_gather_bitwise_equals_concatenate(self, p, n, seed):
        rng = np.random.default_rng(seed)
        bufs = [rng.normal(size=n) for _ in range(p)]
        out = SimCluster(HPC2_AMD, p).comm().gather(bufs)
        assert np.array_equal(out, np.concatenate([b.ravel() for b in bufs]))

    @given(p=st.integers(1, 16), n=st.integers(1, 40), seed=st.integers(0, 2**20))
    @settings(max_examples=25, deadline=None)
    def test_bcast_bitwise_copies(self, p, n, seed):
        rng = np.random.default_rng(seed)
        src = rng.normal(size=n)
        copies = SimCluster(HPC2_AMD, p).comm().bcast(src)
        assert len(copies) == p
        assert all(np.array_equal(c, src) for c in copies)

    @given(
        p=st.integers(2, 16),
        rows=st.integers(1, 20),
        seed=st.integers(0, 2**20),
    )
    @settings(max_examples=25, deadline=None)
    def test_allreduce_max_op_equals_numpy(self, p, rows, seed):
        rng = np.random.default_rng(seed)
        bufs = [rng.normal(size=rows) for _ in range(p)]
        out = SimCluster(HPC2_AMD, p).comm().allreduce(bufs, op=np.maximum)
        assert np.array_equal(out, np.max(bufs, axis=0))


class TestCostShape:
    """Fig. 10's qualitative claims, asserted on the estimates."""

    def test_packing_reduces_collectives_and_time(self):
        for machine in (HPC1_SUNWAY, HPC2_AMD):
            b = BaselineRowwiseAllreduce().estimate(machine, 1024, 30002, ROW_BYTES)
            p = PackedAllreduce().estimate(machine, 1024, 30002, ROW_BYTES)
            assert p.n_collectives < b.n_collectives / 100
            assert p.total_time < b.total_time / 5

    def test_packed_speedup_grows_with_ranks(self):
        speedups = []
        for ranks in (256, 1024, 4096):
            b = BaselineRowwiseAllreduce().estimate(HPC2_AMD, ranks, 30002, ROW_BYTES)
            p = PackedAllreduce().estimate(HPC2_AMD, ranks, 30002, ROW_BYTES)
            speedups.append(b.total_time / p.total_time)
        assert speedups[0] < speedups[1] < speedups[2]

    def test_paper_speedup_ranges(self):
        """Speedups land in the paper's reported bands (coarsely)."""
        # HPC#1: 8.2x - 34.9x over 256..8192 ranks.
        for ranks in (256, 8192):
            b = BaselineRowwiseAllreduce().estimate(HPC1_SUNWAY, ranks, 30002, ROW_BYTES)
            p = PackedAllreduce().estimate(HPC1_SUNWAY, ranks, 30002, ROW_BYTES)
            assert 5.0 < b.total_time / p.total_time < 60.0
        # HPC#2 packed: 9.2x - 269.6x.
        b = BaselineRowwiseAllreduce().estimate(HPC2_AMD, 256, 30002, ROW_BYTES)
        p = PackedAllreduce().estimate(HPC2_AMD, 256, 30002, ROW_BYTES)
        assert 5.0 < b.total_time / p.total_time < 30.0
        b = BaselineRowwiseAllreduce().estimate(HPC2_AMD, 8192, 30002, ROW_BYTES)
        p = PackedAllreduce().estimate(HPC2_AMD, 8192, 30002, ROW_BYTES)
        assert 60.0 < b.total_time / p.total_time < 400.0

    def test_hierarchical_beats_packed_on_hpc2(self):
        for ranks in (1024, 8192):
            p = PackedAllreduce().estimate(HPC2_AMD, ranks, 30002, ROW_BYTES)
            h = PackedHierarchicalAllreduce().estimate(HPC2_AMD, ranks, 30002, ROW_BYTES)
            assert h.total_time < p.total_time

    def test_pack_memory_heuristic(self):
        rep = PackedAllreduce().estimate(HPC2_AMD, 256, 30002, ROW_BYTES)
        assert rep.peak_pack_bytes <= PACK_LIMIT_BYTES

"""Simulated cluster, collectives, SHM windows and the cost model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CommunicationError
from repro.runtime import (
    CommCostModel,
    HPC1_SUNWAY,
    HPC2_AMD,
    SharedWindow,
    SimCluster,
    allreduce_time,
    barrier_time,
    machine_by_name,
    point_to_point_time,
)


class TestMachines:
    def test_lookup(self):
        assert machine_by_name("hpc1") is HPC1_SUNWAY
        assert machine_by_name("HPC2") is HPC2_AMD
        with pytest.raises(CommunicationError):
            machine_by_name("hpc9")

    def test_paper_facts(self):
        # Node shapes from the paper's evaluation setup.
        assert HPC1_SUNWAY.procs_per_node == 6  # SW39010 core groups
        assert HPC2_AMD.procs_per_node == 32  # 32-core CPU
        assert HPC2_AMD.ranks_per_accelerator == 8  # 4 GPUs per node
        assert HPC1_SUNWAY.accelerator.rma_max_bytes == 64 * 1024
        assert not HPC1_SUNWAY.shm_windows  # disjoint core-group memories
        assert HPC2_AMD.shm_windows
        assert HPC2_AMD.accelerator.compute_units == 64  # MI50 CUs

    def test_nodes_for(self):
        assert HPC2_AMD.nodes_for(32) == 1
        assert HPC2_AMD.nodes_for(33) == 2
        with pytest.raises(CommunicationError):
            HPC2_AMD.nodes_for(0)


class TestCostPrimitives:
    def test_point_to_point(self):
        assert point_to_point_time(0, 1e-6, 1e-9) == pytest.approx(1e-6)
        with pytest.raises(CommunicationError):
            point_to_point_time(-1, 1e-6, 1e-9)

    def test_barrier_scaling(self):
        assert barrier_time(1, 1e-6) == 0.0
        assert barrier_time(8, 1e-6) == pytest.approx(3e-6)
        assert barrier_time(9, 1e-6) == pytest.approx(4e-6)

    def test_allreduce_monotone_in_size_and_ranks(self):
        t_small = allreduce_time(64, 1024, 1e-6, 1e-10)
        t_big = allreduce_time(64, 1024**2, 1e-6, 1e-10)
        assert t_big > t_small
        assert allreduce_time(128, 1024, 1e-6, 1e-10) > allreduce_time(
            4, 1024, 1e-6, 1e-10
        )

    def test_single_rank_free(self):
        assert allreduce_time(1, 10**6, 1e-6, 1e-10) == 0.0

    def test_hierarchical_beats_flat_at_scale(self):
        cost = CommCostModel(HPC2_AMD)
        nbytes = 512 * 13 * 1024
        flat = cost.allreduce(4096, nbytes)
        local, inter = cost.hierarchical_allreduce(4096, nbytes, 32)
        assert local + inter < flat

    def test_hierarchical_requires_shm(self):
        cost = CommCostModel(HPC1_SUNWAY)
        with pytest.raises(CommunicationError):
            cost.intra_node_reduce(6, 1024)

    def test_hierarchical_divisibility(self):
        cost = CommCostModel(HPC2_AMD)
        with pytest.raises(CommunicationError):
            cost.hierarchical_allreduce(100, 1024, 32)


class TestSimCluster:
    def test_layout(self, make_cluster):
        cl = make_cluster(100)
        assert cl.n_nodes == 4
        assert cl.node_of(0) == 0 and cl.node_of(99) == 3
        assert list(cl.ranks_of_node(3)) == list(range(96, 100))
        assert cl.accelerator_group_of(15) == 1

    def test_rank_bounds(self, make_cluster):
        cl = make_cluster(8)
        with pytest.raises(CommunicationError):
            cl.node_of(8)
        with pytest.raises(CommunicationError):
            SimCluster(HPC2_AMD, 0)

    def test_ranks_of_node_partial_last_node(self, make_cluster):
        # 100 ranks at 32/node: node 3 hosts only ranks 96..99.
        cl = make_cluster(100)
        partial = cl.ranks_of_node(3)
        assert list(partial) == [96, 97, 98, 99]
        assert len(partial) < cl.machine.procs_per_node

    def test_ranks_of_node_bounds_raise_clearly(self, make_cluster):
        cl = make_cluster(100)  # 4 nodes
        with pytest.raises(CommunicationError, match="out of range"):
            cl.ranks_of_node(4)  # first node past the end
        with pytest.raises(CommunicationError, match="out of range"):
            cl.ranks_of_node(-1)  # used to return a bogus negative range
        # Exactly full cluster: last valid node is n_nodes - 1.
        full = make_cluster(64)
        assert list(full.ranks_of_node(1)) == list(range(32, 64))
        with pytest.raises(CommunicationError, match="out of range"):
            full.ranks_of_node(2)


class TestSimComm:
    def test_allreduce_is_exact_sum(self, rng, make_cluster):
        cl = make_cluster(16)
        comm = cl.comm()
        bufs = [rng.normal(size=(7, 3)) for _ in range(16)]
        out = comm.allreduce(bufs)
        assert np.array_equal(out, sum(bufs[1:], bufs[0].copy()))
        assert comm.stats.calls == 1
        assert comm.stats.model_time > 0

    @given(p=st.integers(2, 24), n=st.integers(1, 40))
    @settings(max_examples=25, deadline=None)
    def test_allreduce_matches_numpy_sum(self, p, n):
        rng = np.random.default_rng(p * 100 + n)
        cl = SimCluster(HPC2_AMD, p)
        bufs = [rng.normal(size=n) for _ in range(p)]
        out = cl.comm().allreduce(bufs)
        ref = np.sum(bufs, axis=0)
        assert np.allclose(out, ref, rtol=1e-12)

    def test_custom_op(self, make_cluster):
        cl = make_cluster(4)
        bufs = [np.array([float(i)]) for i in range(4)]
        out = cl.comm().allreduce(bufs, op=np.maximum)
        assert out[0] == 3.0

    def test_shape_validation(self, make_cluster):
        cl = make_cluster(4)
        with pytest.raises(CommunicationError):
            cl.comm().allreduce([np.zeros(3)] * 3)
        with pytest.raises(CommunicationError):
            cl.comm().allreduce([np.zeros(3)] * 3 + [np.zeros(4)])

    def test_bcast_copies(self, make_cluster):
        cl = make_cluster(4)
        src = np.arange(5.0)
        copies = cl.comm().bcast(src)
        assert len(copies) == 4
        copies[0][0] = 99.0
        assert src[0] == 0.0

    def test_gather_concatenates(self, make_cluster):
        cl = make_cluster(3)
        out = cl.comm().gather([np.array([i, i]) for i in range(3)])
        assert np.array_equal(out, [0, 0, 1, 1, 2, 2])

    def test_subcomms(self, make_cluster):
        cl = make_cluster(64)
        comm = cl.comm()
        nodes = comm.node_subcomms()
        assert len(nodes) == 2 and all(s.size == 32 for s in nodes)
        leaders = comm.leader_subcomm()
        assert leaders.size == 2 and leaders.ranks == [0, 32]


class TestSharedWindow:
    def test_requires_shm(self):
        with pytest.raises(CommunicationError):
            SharedWindow(SimCluster(HPC1_SUNWAY, 6), (4,))

    def test_chunked_accumulate_equals_sum(self, rng):
        cl = SimCluster(HPC2_AMD, 32)
        win = SharedWindow(cl, (10, 8))
        contribs = [rng.normal(size=(10, 8)) for _ in range(32)]
        out = win.accumulate_chunked(0, contribs)
        assert np.allclose(out, np.sum(contribs, axis=0), atol=1e-12)

    def test_zero_resets(self, rng):
        cl = SimCluster(HPC2_AMD, 4)
        win = SharedWindow(cl, (5,))
        win.accumulate_chunked(0, [np.ones(5)] * 4)
        win.zero()
        assert np.all(win.node_copy(0) == 0.0)

    def test_shape_mismatch(self):
        cl = SimCluster(HPC2_AMD, 4)
        win = SharedWindow(cl, (5,))
        with pytest.raises(CommunicationError):
            win.accumulate_chunked(0, [np.ones(6)])
        with pytest.raises(CommunicationError):
            win.accumulate_chunked(0, [])

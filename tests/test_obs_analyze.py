"""Trace analytics & scaling attribution (repro.obs.analyze) + satellites:
the shared imbalance definition, artifact-path hardening, byte-stable
bench emission and the benchmark history log."""

import json
import subprocess
import sys
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest

from repro.atoms import hydrogen_molecule
from repro.cli import main as cli_main
from repro.dft.scf import SCFDriver
from repro.errors import ArtifactError, ExperimentError, MappingError
from repro.mapping.strategies import BatchAssignment
from repro.obs import Span, Tracer, activate, write_chrome_trace
from repro.obs.analyze import (
    Timeline,
    TimelineEvent,
    append_entry,
    critical_path,
    detect_trends,
    diff_timelines,
    latest_parameters,
    load_history,
    load_run,
    mapping_attribution,
    phase_imbalances,
    rolling_baseline,
    scheme_cost_table,
    strong_scaling,
    weak_scaling,
)
from repro.runtime.faults import CycleFaultInjector, FaultPlan, ScheduledFault
from repro.runtime.machines import HPC1_SUNWAY, HPC2_AMD
from repro.runtime.trace import CycleTrace, Interval
from repro.utils.artifacts import prepare_artifact_path
from repro.utils.balance import max_mean_imbalance


# ----------------------------------------------------------------------
# Satellite: the one imbalance definition
# ----------------------------------------------------------------------
class TestSharedImbalance:
    def test_helper_values(self):
        assert max_mean_imbalance([2.0, 2.0]) == 1.0
        assert max_mean_imbalance([3.0, 1.0]) == 1.5
        assert max_mean_imbalance(np.array([4, 2, 0])) == 2.0

    def test_helper_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError, match="zero workers"):
            max_mean_imbalance([])
        with pytest.raises(ValueError, match="zero total load"):
            max_mean_imbalance([0.0, 0.0])

    def test_cycle_trace_and_mapping_agree_on_identical_loads(self):
        # Same per-worker loads through both call sites: the values must
        # be identical because both delegate to the shared helper.
        loads = [3, 1]
        trace = CycleTrace(2, [Interval(0, "H", 0.0, 3.0),
                               Interval(1, "H", 0.0, 1.0)])
        assignment = BatchAssignment("test", 2, ((0,), (1,)))
        batches = [SimpleNamespace(n_points=n) for n in loads]
        assert trace.imbalance() == max_mean_imbalance(loads)
        assert assignment.imbalance(batches) == max_mean_imbalance(loads)
        assert trace.imbalance() == assignment.imbalance(batches)

    def test_domain_specific_errors_preserved(self):
        with pytest.raises(ExperimentError, match="no work"):
            CycleTrace(2, []).imbalance()
        with pytest.raises(MappingError, match="no grid points"):
            BatchAssignment("test", 1, ((0,),)).imbalance(
                [SimpleNamespace(n_points=0)]
            )

    def test_timeline_phase_imbalance_uses_same_definition(self):
        tl = Timeline(events=[TimelineEvent(0, "H", 0.0, 3.0),
                              TimelineEvent(1, "H", 0.0, 1.0)])
        rows = phase_imbalances(tl)
        assert rows[0].imbalance == max_mean_imbalance([3.0, 1.0])
        assert rows[0].hot_ranks[0] == 0


# ----------------------------------------------------------------------
# Satellite: artifact-path hardening
# ----------------------------------------------------------------------
class TestArtifactPaths:
    def test_creates_parent_directories(self, tmp_path):
        out = prepare_artifact_path(tmp_path / "a" / "b" / "t.json")
        assert out.parent.is_dir()

    def test_refuses_overwrite_without_force(self, tmp_path):
        target = tmp_path / "t.json"
        target.write_text("{}")
        with pytest.raises(ArtifactError, match="--force"):
            prepare_artifact_path(target)
        assert prepare_artifact_path(target, force=True) == target

    def test_rejects_directory_target(self, tmp_path):
        with pytest.raises(ArtifactError, match="directory"):
            prepare_artifact_path(tmp_path)

    def test_cli_trace_refuses_overwrite_and_force_overrides(
        self, tmp_path, capsys
    ):
        out = tmp_path / "nested" / "dir" / "trace.json"
        argv = ["trace", "--molecule", "h2", "--out", str(out)]
        assert cli_main(argv) == 0
        assert out.exists()
        capsys.readouterr()
        # Second run without --force: exit 2, clear one-line error.
        assert cli_main(argv) == 2
        err = capsys.readouterr().err
        assert "refusing to overwrite" in err and "--force" in err
        assert cli_main(argv + ["--force"]) == 0

    def test_cli_report_parent_dirs_created(self, tmp_path, capsys):
        report = tmp_path / "reports" / "run.json"
        assert cli_main([
            "trace", "--molecule", "h2",
            "--out", str(tmp_path / "t.json"), "--report", str(report),
        ]) == 0
        assert json.loads(report.read_text())["label"].startswith("physics:H2")


# ----------------------------------------------------------------------
# Tentpole: timelines and the critical path
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_runs(minimal_settings):
    """Spans of a fault-free and a seeded-fault H2 SCF run."""
    clean, faulted = Tracer(), Tracer()
    with activate(clean):
        SCFDriver(hydrogen_molecule(), minimal_settings).run()
    plan = FaultPlan(schedule=[ScheduledFault("cycle_fault", 1, site="scf")])
    with activate(faulted):
        SCFDriver(hydrogen_molecule(), minimal_settings).run(
            fault_injector=CycleFaultInjector(plan)
        )
    return clean.spans, faulted.spans


class TestTimeline:
    def test_from_spans_builds_segments_and_phases(self, traced_runs):
        tl = Timeline.from_spans(traced_runs[0], label="clean")
        assert tl.n_ranks == 1
        assert tl.primary_categories() == ("phase",)
        segments = tl.segments()
        assert "scf[1]" in segments and "scf[2]" in segments
        assert segments.index("scf[1]") < segments.index("scf[2]")
        assert set(tl.busy_matrix()) >= {"density", "hartree", "eigensolver"}

    def test_chrome_trace_roundtrip_preserves_busy_accounting(
        self, traced_runs, tmp_path
    ):
        tl = Timeline.from_spans(traced_runs[0])
        path = write_chrome_trace(tmp_path / "run.json", traced_runs[0])
        loaded = load_run(path)
        for phase, row in tl.busy_matrix().items():
            for rank, seconds in row.items():
                assert loaded.busy_matrix()[phase][rank] == pytest.approx(
                    seconds, rel=1e-6, abs=5e-6  # microsecond granularity
                )

    def test_critical_path_picks_max_busy_rank_with_deterministic_ties(self):
        tl = Timeline(events=[
            TimelineEvent(0, "Sumup", 0.0, 1.0, segment="c[1]"),
            TimelineEvent(1, "Sumup", 0.0, 4.0, segment="c[1]"),
            TimelineEvent(0, "DM", 4.0, 6.0, segment="c[2]"),
            TimelineEvent(1, "DM", 4.0, 6.0, segment="c[2]"),  # tie
        ])
        cp = critical_path(tl)
        assert [(s.segment, s.phase, s.rank) for s in cp.steps] == [
            ("c[1]", "Sumup", 1), ("c[2]", "DM", 0),
        ]
        assert cp.bound_seconds == 6.0
        assert cp.wall_seconds == 6.0

    def test_modeled_cycle_trace_timeline(self):
        ct = CycleTrace(2, [Interval(0, "DM", 0.0, 1.0),
                            Interval(1, "DM", 0.0, 3.0)])
        ev = SimpleNamespace(kind="straggler", rank=1, site="", delay=2.0)
        tl = Timeline.from_cycle_trace(ct, fault_events=[ev])
        assert tl.primary_categories() == ("model",)
        assert critical_path(tl).steps[0].rank == 1
        assert tl.faults[0].kind == "straggler"

    def test_load_run_degrades_run_report_to_phase_sequence(self, tmp_path):
        doc = {"label": "r", "phase_seconds": {"scf": 2.0, "cpscf": 3.0}}
        path = tmp_path / "report.json"
        path.write_text(json.dumps(doc))
        tl = load_run(path)
        assert tl.wall_seconds == 5.0
        assert tl.phase_busy() == {"scf": 2.0, "cpscf": 3.0}

    def test_load_run_rejects_unknown_document(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"what": 1}')
        with pytest.raises(ExperimentError, match="neither"):
            load_run(path)


class TestChaosAttribution:
    """Seeded FaultPlan events must survive into the analytics."""

    def test_fault_event_lands_in_timeline_with_cycle_site(self, traced_runs):
        tl = Timeline.from_spans(traced_runs[1], label="faulted")
        assert len(tl.faults) == 1
        fault = tl.faults[0]
        assert fault.kind == "cycle_fault"
        assert fault.site == "scf[1]"  # deterministic seeded cycle
        assert fault.segment == "scf[1]"  # from the ambient trace context

    def test_fault_named_on_critical_path(self, traced_runs):
        tl = Timeline.from_spans(traced_runs[1])
        rendered = critical_path(tl).render()
        assert "fault on path: cycle_fault" in rendered
        assert "scf[1]" in rendered

    def test_fault_named_in_diff_narrative(self, traced_runs):
        base = Timeline.from_spans(traced_runs[0], label="clean")
        fresh = Timeline.from_spans(traced_runs[1], label="faulted")
        text = diff_timelines(base, fresh).narrative()
        assert "injected faults in fresh run only:" in text
        assert "cycle_fault" in text and "scf[1]" in text


# ----------------------------------------------------------------------
# Tentpole: A/B diff attribution
# ----------------------------------------------------------------------
def _straggler_pair(tmp_path):
    """Two recorded runs; the fresh one has rank 2 straggling in Sumup."""

    def spans(straggle):
        out = []
        for cycle in (1, 2):
            t0 = (cycle - 1) * 2.0
            for rank in range(4):
                sumup = 0.5 + (3.0 if straggle and rank == 2 and cycle == 2 else 0.0)
                attrs = {"rank": rank, "loop": "cpscf", "direction": 0,
                         "cycle": cycle}
                out.append(Span("Sumup", "phase", t0, t0 + sumup, dict(attrs)))
                out.append(Span("DM", "phase", t0 + sumup, t0 + sumup + 0.5,
                                dict(attrs)))
        if straggle:
            out.append(Span("straggler", "fault", 2.5, 2.5,
                            {"rank": 2, "site": "allreduce[2]", "delay": 3.0},
                            instant=True))
        return out

    base = write_chrome_trace(tmp_path / "base.json", spans(False))
    fresh = write_chrome_trace(tmp_path / "fresh.json", spans(True))
    return base, fresh


class TestDiffAttribution:
    def test_top_contribution_names_perturbed_phase_and_rank(self, tmp_path):
        base, fresh = _straggler_pair(tmp_path)
        diff = diff_timelines(load_run(base), load_run(fresh))
        top = diff.contributions[0]
        assert (top.phase, top.rank) == ("Sumup", 2)
        assert top.delta == pytest.approx(3.0, rel=1e-5)
        assert diff.wall_delta == pytest.approx(3.0, rel=1e-5)

    def test_narrative_links_fault_to_contribution(self, tmp_path):
        base, fresh = _straggler_pair(tmp_path)
        text = diff_timelines(load_run(base), load_run(fresh)).narrative()
        first = [l for l in text.splitlines() if l.startswith("1.")][0]
        assert "phase Sumup on rank 2" in first
        assert "straggler" in first  # fault linked inline

    def test_cli_diff_is_deterministic_across_invocations(self, tmp_path):
        base, fresh = _straggler_pair(tmp_path)
        argv = [sys.executable, "-m", "repro", "analyze", "diff",
                str(base), str(fresh)]
        env_root = Path(__file__).resolve().parent.parent
        runs = [
            subprocess.run(
                argv, capture_output=True, text=True,
                cwd=env_root, env={"PYTHONPATH": str(env_root / "src")},
            )
            for _ in range(2)
        ]
        assert runs[0].returncode == 0, runs[0].stderr
        assert runs[0].stdout == runs[1].stdout  # byte-identical
        first = [l for l in runs[0].stdout.splitlines()
                 if l.startswith("1.")][0]
        assert "phase Sumup on rank 2" in first

    def test_identical_runs_diff_to_no_change(self, tmp_path):
        base, _ = _straggler_pair(tmp_path)
        diff = diff_timelines(load_run(base), load_run(base))
        assert diff.wall_delta == 0.0
        assert "no per-phase busy-time change" in diff.narrative()


# ----------------------------------------------------------------------
# Tentpole: scaling parity with the figures + attribution inputs
# ----------------------------------------------------------------------
class TestScalingParity:
    def test_strong_scaling_matches_fig15_exactly(self):
        from repro.experiments.fig15_strong import run_fig15_strong

        result = run_fig15_strong(
            n_atoms=3002, ranks_hpc1=(128, 256), ranks_hpc2=(128, 256)
        )
        for series in result.series:
            points = strong_scaling(series.ranks, series.cycle_seconds)
            assert [p.speedup for p in points] == series.speedups()
            assert [p.efficiency for p in points] == series.efficiencies()
            assert points[0].speedup == 1.0
            # within-1% acceptance bound holds trivially (same code path)
            for p, s in zip(points, series.speedups()):
                assert p.speedup == pytest.approx(s, rel=0.01)

    def test_weak_scaling_matches_fig16_exactly(self):
        from repro.experiments.fig16_weak import run_fig16_weak

        result = run_fig16_weak(cases=((3002, 128, 128), (6002, 256, 256)))
        for series in result.series:
            points = weak_scaling(
                series.atoms, series.ranks, series.cycle_seconds
            )
            assert [p.efficiency for p in points] == series.efficiencies()
            assert points[0].efficiency == 1.0

    def test_scaling_rejects_degenerate_series(self):
        with pytest.raises(ExperimentError, match="non-empty"):
            strong_scaling([], [])
        with pytest.raises(ExperimentError, match="non-positive"):
            strong_scaling([1, 2], [1.0, 0.0])

    def test_mapping_attribution_shows_locality_advantage(self):
        from repro.experiments.common import polyethylene_simulator

        sim = polyethylene_simulator(602)
        rows = [
            mapping_attribution(sim.assignment(8, locality), sim.batches)
            for locality in (False, True)
        ]
        by_strategy = {r.strategy: r for r in rows}
        # The paper's trade: locality mapping touches far fewer atoms
        # per rank while staying point-balanced.
        assert (by_strategy["locality_enhancing"].mean_atoms
                < by_strategy["load_balancing"].mean_atoms / 2)
        for r in rows:
            assert r.imbalance >= 1.0

    def test_scheme_cost_table_skips_unavailable_schemes(self):
        # HPC#1 has no shared-memory windows: hierarchical is skipped.
        with_shm = scheme_cost_table(HPC2_AMD, 64, 512, 4096)
        without = scheme_cost_table(HPC1_SUNWAY, 64, 512, 4096)
        assert len(with_shm) == len(without) + 1
        assert all(rep.total_time > 0 for _, rep in with_shm)


# ----------------------------------------------------------------------
# Tentpole + satellite: benchmark history and byte-stable emission
# ----------------------------------------------------------------------
def _entry_doc(wall, speedup=10.0):
    return {
        "level": "minimal", "n_sweeps": 1,
        "backends": {"batched": {"timings": {"wall_seconds": wall,
                                             "speedup_vs_numpy": speedup}}},
    }


class TestHistory:
    def test_append_and_load_roundtrip(self, tmp_path):
        log = tmp_path / "BENCH_history.jsonl"
        append_entry(log, _entry_doc(1.0), gate_ok=True,
                     recorded_at="2026-08-06T00:00:00+00:00",
                     provenance={"commit": "abc"})
        append_entry(log, _entry_doc(1.1), gate_ok=False,
                     recorded_at="2026-08-06T01:00:00+00:00",
                     provenance={"commit": "abc"})
        entries = load_history(log)
        assert [e["gate_ok"] for e in entries] == [True, False]
        assert entries[0]["provenance"]["commit"] == "abc"
        assert latest_parameters(entries) == ("minimal", 1)
        # Lines are sorted-key JSON (reviewable diffs).
        line = log.read_text().splitlines()[0]
        assert line == json.dumps(json.loads(line), sort_keys=True)

    def test_rolling_baseline_is_windowed_median(self, tmp_path):
        log = tmp_path / "h.jsonl"
        for wall in (9.0, 1.0, 1.2, 1.4, 1.6, 1.8):
            append_entry(log, _entry_doc(wall), recorded_at="t",
                         provenance={})
        baseline = rolling_baseline(load_history(log), window=5)
        # 9.0 is outside the window; median_low of the last five is 1.4.
        key = "backends.batched.timings.wall_seconds"
        assert baseline[key] == 1.4
        # Flat dict gates directly (flatten of flat == identity).
        from repro.obs.regress import compare_reports

        assert compare_reports(_entry_doc(1.5), baseline).ok
        assert not compare_reports(_entry_doc(50.0), baseline).ok

    def test_trend_detection_flags_monotone_drift_only(self, tmp_path):
        drifting = tmp_path / "d.jsonl"
        for wall in (1.0, 1.2, 1.5, 2.0):
            append_entry(drifting, _entry_doc(wall), recorded_at="t",
                         provenance={})
        report = detect_trends(load_history(drifting), window=5)
        assert not report.ok
        assert any("wall_seconds" in t.key for t in report.trends)
        assert "rising" in report.render()

        noisy = tmp_path / "n.jsonl"
        for wall in (1.0, 1.2, 0.9, 2.0):  # non-monotone: no trend
            append_entry(noisy, _entry_doc(wall), recorded_at="t",
                         provenance={})
        assert detect_trends(load_history(noisy), window=5).ok

    def test_speedup_floor_trend_direction(self, tmp_path):
        log = tmp_path / "s.jsonl"
        for sp in (10.0, 8.0, 5.0):  # falling speedup = bad
            append_entry(log, _entry_doc(1.0, speedup=sp), recorded_at="t",
                         provenance={})
        report = detect_trends(load_history(log), window=5)
        assert any(t.direction == "falling" for t in report.trends)

    def test_corrupt_history_line_is_a_clear_error(self, tmp_path):
        log = tmp_path / "c.jsonl"
        log.write_text('{"emission": {}}\nnot json\n')
        with pytest.raises(ExperimentError, match="corrupt"):
            load_history(log)

    def test_cli_history_trend_gate(self, tmp_path, capsys):
        log = tmp_path / "h.jsonl"
        assert cli_main(["analyze", "history", "--path", str(log)]) == 0
        assert "no benchmark history" in capsys.readouterr().out
        for wall in (1.0, 1.3, 1.7):
            append_entry(log, _entry_doc(wall), recorded_at="t",
                         provenance={})
        assert cli_main(["analyze", "history", "--path", str(log)]) == 1
        assert "DRIFT" in capsys.readouterr().out


@pytest.fixture(scope="module")
def emission_pair():
    from repro.obs.bench import backend_emission

    return (backend_emission("minimal", 1), backend_emission("minimal", 1))


class TestByteStableEmission:
    def test_stable_view_bytes_identical_across_runs(self, emission_pair):
        from repro.obs.bench import stable_view

        a, b = (json.dumps(stable_view(e), sort_keys=True)
                for e in emission_pair)
        assert a == b

    def test_volatile_walls_quarantined_under_timings(self, emission_pair):
        from repro.obs.bench import stable_view

        doc = emission_pair[0]
        assert "wall_seconds" in doc["backends"]["numpy"]["timings"]
        assert "batched_speedup_vs_numpy" in doc["timings"]
        # Per-phase wall slices keep the leaf name "seconds" so the
        # regression gate's per-phase slowdown band still matches.
        phases = doc["backends"]["numpy"]["timings"]["phases"]
        assert all(set(v) == {"seconds"} for v in phases.values())
        flat = json.dumps(stable_view(doc))
        assert "wall_seconds" not in flat and "speedup" not in flat

    def test_gate_still_sees_timings_via_flatten(self, emission_pair):
        from repro.obs.regress import default_band, flatten

        flat = flatten(emission_pair[0])
        key = "backends.batched.timings.wall_seconds"
        assert key in flat
        assert default_band(key).kind == "slowdown"
        assert default_band(
            "timings.batched_speedup_vs_numpy"
        ).kind == "floor"

    def test_bench_check_appends_history_and_gates_against_it(
        self, emission_pair, tmp_path, capsys
    ):
        log = tmp_path / "BENCH_history.jsonl"
        # Seed a relaxed history (4x slack) so a loaded machine passes.
        relaxed = json.loads(json.dumps(emission_pair[0]))
        for entry in relaxed["backends"].values():
            entry["timings"]["wall_seconds"] *= 4.0
            entry["timings"]["speedup_vs_numpy"] /= 4.0
            for stats in entry["timings"]["phases"].values():
                stats["seconds"] *= 4.0
        relaxed["timings"]["batched_speedup_vs_numpy"] /= 4.0
        append_entry(log, relaxed, recorded_at="t", provenance={})
        before = len(load_history(log))
        rc = cli_main([
            "bench-check", "--against-history", "--history", str(log),
            "--baseline", str(tmp_path / "unused.json"),
        ])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "rolling median" in out
        # One provenance-stamped entry appended per run.
        entries = load_history(log)
        assert len(entries) == before + 1
        assert "commit" in entries[-1]["provenance"]
        assert entries[-1]["gate_ok"] is True

"""Property-based tests of the occupation and spin-XC primitives.

The example-based suites pin specific molecules; these assert the
algebraic contracts (electron-count conservation, entropy sign, the
LSDA -> LDA closed-shell limit) over randomized spectra and densities.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dft.occupations import (
    aufbau_occupations,
    fermi_occupations,
    smearing_entropy,
)
from repro.dft.xc import DENSITY_FLOOR, lda_exchange_correlation
from repro.dft.xc_spin import lsda_energy_density, lsda_exchange_correlation


def _spectrum(seed: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.sort(rng.normal(scale=2.0, size=n))


class TestFermiOccupations:
    @given(
        seed=st.integers(0, 10_000),
        n_states=st.integers(2, 40),
        width=st.floats(1e-4, 0.5),
        filling=st.floats(0.05, 0.95),
    )
    @settings(max_examples=60, deadline=None)
    def test_electron_count_conserved(self, seed, n_states, width, filling):
        eigenvalues = _spectrum(seed, n_states)
        n_electrons = 2.0 * round(filling * n_states, 6)
        f, mu = fermi_occupations(eigenvalues, n_electrons, width)
        assert abs(float(f.sum()) - n_electrons) < 1e-8
        assert np.all(f >= 0.0) and np.all(f <= 2.0)
        assert np.isfinite(mu)

    @given(
        seed=st.integers(0, 10_000),
        n_states=st.integers(2, 40),
        width=st.floats(1e-4, 0.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_occupations_monotone_in_energy(self, seed, n_states, width):
        eigenvalues = _spectrum(seed, n_states)
        f, _ = fermi_occupations(eigenvalues, float(n_states), width)
        # Sorted eigenvalues => non-increasing Fermi-Dirac occupations.
        assert np.all(np.diff(f) <= 1e-12)

    @given(
        seed=st.integers(0, 10_000),
        n_states=st.integers(2, 20),
        n_occ=st.integers(1, 10),
    )
    @settings(max_examples=60, deadline=None)
    def test_zero_width_recovers_aufbau(self, seed, n_states, n_occ):
        eigenvalues = _spectrum(seed, n_states)
        n_electrons = 2.0 * min(n_occ, n_states)
        f_zero, _ = fermi_occupations(eigenvalues, n_electrons, width=0.0)
        f_aufbau = aufbau_occupations(eigenvalues, n_electrons)
        np.testing.assert_array_equal(f_zero, f_aufbau)

    @given(
        seed=st.integers(0, 10_000),
        n_states=st.integers(2, 20),
        n_occ=st.integers(1, 10),
    )
    @settings(max_examples=40, deadline=None)
    def test_small_width_approaches_aufbau(self, seed, n_states, n_occ):
        eigenvalues = _spectrum(seed, n_states)
        # A gapped spectrum: widen the HOMO-LUMO separation explicitly.
        n_occ = min(n_occ, n_states - 1)
        eigenvalues[n_occ:] += 2.0
        n_electrons = 2.0 * n_occ
        f, _ = fermi_occupations(eigenvalues, n_electrons, width=1e-4)
        f_aufbau = aufbau_occupations(eigenvalues, n_electrons)
        assert float(np.abs(f - f_aufbau).max()) < 1e-6


class TestSmearingEntropy:
    @given(
        seed=st.integers(0, 10_000),
        n_states=st.integers(2, 40),
        width=st.floats(1e-4, 0.5),
        filling=st.floats(0.05, 0.95),
    )
    @settings(max_examples=60, deadline=None)
    def test_entropy_term_never_positive(self, seed, n_states, width, filling):
        eigenvalues = _spectrum(seed, n_states)
        n_electrons = 2.0 * round(filling * n_states, 6)
        f, _ = fermi_occupations(eigenvalues, n_electrons, width)
        # smearing_entropy returns -T*S with S >= 0, so the energy
        # correction is <= 0, and exactly 0 only for integer filling.
        ts = smearing_entropy(f, width)
        assert ts <= 0.0
        assert smearing_entropy(f, 0.0) == 0.0

    @given(width=st.floats(1e-4, 0.5), n_states=st.integers(1, 20))
    @settings(max_examples=30, deadline=None)
    def test_integer_occupations_carry_no_entropy(self, width, n_states):
        # The implementation floors f and 1-f at 1e-300 before the log,
        # so fully (un)occupied states leave a ~1e-298 residue, not an
        # exact zero — negligible against any energy scale in the code.
        f = np.full(n_states, 2.0)
        assert abs(smearing_entropy(f, width)) < 1e-250


class TestLsdaClosedShellLimit:
    """LSDA at zeta = 0 must reduce to the restricted LDA functional."""

    @given(
        seed=st.integers(0, 10_000),
        n_points=st.integers(1, 64),
        scale=st.floats(1e-3, 10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_energy_density_matches_lda(self, seed, n_points, scale):
        rng = np.random.default_rng(seed)
        n = scale * rng.uniform(0.0, 1.0, size=n_points)
        exc_spin = lsda_energy_density(n / 2.0, n / 2.0)
        exc_lda = lda_exchange_correlation(n).exc
        np.testing.assert_allclose(exc_spin, exc_lda, rtol=1e-10, atol=1e-12)

    @given(
        seed=st.integers(0, 10_000),
        n_points=st.integers(1, 32),
        scale=st.floats(1e-2, 10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_potentials_match_lda(self, seed, n_points, scale):
        rng = np.random.default_rng(seed)
        # Keep densities clear of the floor so both finite-difference
        # derivative paths are in their smooth regime.
        n = scale * rng.uniform(0.1, 1.0, size=n_points)
        res = lsda_exchange_correlation(n / 2.0, n / 2.0)
        vxc_lda = lda_exchange_correlation(n).vxc
        # Spin channels are symmetric by construction...
        np.testing.assert_allclose(res.vxc_up, res.vxc_dn, rtol=0, atol=1e-12)
        # ...and each equals the restricted potential to FD accuracy.
        np.testing.assert_allclose(res.vxc_up, vxc_lda, rtol=2e-5, atol=2e-5)

    def test_below_floor_is_exactly_zero(self):
        tiny = np.full(4, DENSITY_FLOOR / 4.0)
        res = lsda_exchange_correlation(tiny, tiny)
        assert np.all(res.exc == 0.0)
        assert np.all(res.vxc_up == 0.0) and np.all(res.vxc_dn == 0.0)

"""The screening seam's verification story, end to end.

A screened H2O run must pass the *entire* invariant registry at the
full tier — including the new ``screening_vs_dense`` check that
compares the screened grid density against the fully dense reference
derivation — and must still match the committed dense golden record
within its tagged tolerances.  The screening conformance axis pins the
two contractual rows: threshold ``0.0`` is bit-exact with dense, the
default threshold stays within tolerance.
"""

import numpy as np
import pytest

from repro.atoms import hydrogen_molecule, water
from repro.config import get_settings
from repro.dfpt.response import DFPTSolver
from repro.dft.scf import SCFDriver
from repro.grids.sparsity import DEFAULT_SCREENING_THRESHOLD
from repro.verify import (
    Verifier,
    all_invariants,
    compare_to_golden,
    screening_conformance,
)
from repro.verify.golden import record_from_run


@pytest.fixture(scope="module")
def screened_water_run():
    """One fully verified screened H2O pipeline, shared by the module."""
    settings = get_settings(
        "minimal", screening_threshold=DEFAULT_SCREENING_THRESHOLD
    )
    verifier = Verifier("full")
    driver = SCFDriver(water(), settings, verifier=verifier)
    gs = driver.run()
    solver = DFPTSolver(gs, settings.cpscf, verifier=verifier)
    alpha = np.empty((3, 3))
    for j in range(3):
        alpha[:, j] = solver.solve_direction(j).polarizability_column(
            gs.dipoles
        )
    verifier.run_phase("polarizability", polarizability=alpha)
    return driver, gs, alpha, verifier


class TestScreenedWaterInvariants:
    def test_pattern_is_actually_active(self, screened_water_run):
        driver, _, _, _ = screened_water_run
        assert driver.builder.pattern is not None
        assert driver.builder.screening_threshold == (
            DEFAULT_SCREENING_THRESHOLD
        )

    def test_every_invariant_passes(self, screened_water_run):
        _, _, _, verifier = screened_water_run
        report = verifier.report
        assert report.ok, report.render()

    def test_whole_registry_was_exercised(self, screened_water_run):
        _, _, _, verifier = screened_water_run
        checked = {r.name for r in verifier.report.results}
        assert checked == {inv.name for inv in all_invariants()}

    def test_screening_vs_dense_ran_and_is_tight(self, screened_water_run):
        _, _, _, verifier = screened_water_run
        results = [
            r
            for r in verifier.report.results
            if r.name == "screening_vs_dense"
        ]
        assert results, "screening_vs_dense never ran"
        for r in results:
            assert r.passed
            assert r.residual <= 5e-5

    def test_screened_run_matches_dense_golden(self, screened_water_run):
        driver, gs, alpha, _ = screened_water_run
        record = record_from_run(gs, alpha, driver.n_electrons)
        report = compare_to_golden("water", record)
        assert report.ok, report.render()


class TestScreeningVsDenseOnDenseRun:
    def test_invariant_is_trivially_green_without_a_pattern(self):
        settings = get_settings("minimal")
        verifier = Verifier("full")
        SCFDriver(hydrogen_molecule(), settings, verifier=verifier).run()
        results = [
            r
            for r in verifier.report.results
            if r.name == "screening_vs_dense"
        ]
        assert results and all(r.passed for r in results)
        assert all(r.residual == 0.0 for r in results)


class TestScreeningConformanceAxis:
    @pytest.fixture(scope="class")
    def pairs(self):
        return screening_conformance(
            hydrogen_molecule(), get_settings("minimal")
        )

    def test_axis_has_the_two_contract_rows(self, pairs):
        assert [p.axis for p in pairs] == ["screening", "screening"]
        assert [p.b for p in pairs] == ["screened @ 0", "screened @ 1e-06"]

    def test_threshold_zero_is_bit_exact(self, pairs):
        assert pairs[0].classification == "bit-exact"
        assert pairs[0].max_abs_diff == 0.0

    def test_default_threshold_conforms(self, pairs):
        assert pairs[1].ok, pairs[1]
        assert pairs[1].first_divergent_phase is None

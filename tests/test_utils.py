"""Timers, report formatting and linear-algebra helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.linalg import (
    density_matrix_from_orbitals,
    lowdin_orthogonalization,
    pack_lower_triangle,
    solve_generalized_eigenproblem,
    symmetrize,
    unpack_lower_triangle,
)
from repro.utils.reports import TableFormatter, format_bytes, format_seconds
from repro.utils.timing import PhaseTimer, Stopwatch


class TestTiming:
    def test_stopwatch_measures_nonnegative(self):
        with Stopwatch() as sw:
            sum(range(1000))
        assert sw.elapsed >= 0.0

    def test_phase_timer_accumulates(self):
        t = PhaseTimer()
        with t.phase("a"):
            pass
        with t.phase("a"):
            pass
        assert t.visits("a") == 2
        assert t.total("a") >= 0.0

    def test_phase_timer_add_and_merge(self):
        t1, t2 = PhaseTimer(), PhaseTimer()
        t1.add("x", 1.0)
        t2.add("x", 2.0)
        t2.add("y", 3.0)
        t1.merge(t2)
        assert t1.total("x") == pytest.approx(3.0)
        assert t1.grand_total == pytest.approx(6.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            PhaseTimer().add("x", -1.0)

    def test_unknown_phase_is_zero(self):
        assert PhaseTimer().total("nope") == 0.0


class TestReports:
    def test_format_bytes_units(self):
        assert format_bytes(512) == "512.0 B"
        assert format_bytes(2048) == "2.0 KB"
        assert format_bytes(3 * 1024**2) == "3.0 MB"

    def test_format_seconds_units(self):
        assert "us" in format_seconds(5e-6)
        assert "ms" in format_seconds(5e-3)
        assert format_seconds(5.0).endswith(" s")
        assert "min" in format_seconds(300.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            format_seconds(-1.0)

    def test_table_renders_all_rows(self):
        t = TableFormatter(["a", "bb"], title="T")
        t.add_row([1, "x"])
        t.add_row([22, "yyy"])
        out = t.render()
        assert "T" in out and "22" in out and "yyy" in out

    def test_table_rejects_wrong_width(self):
        t = TableFormatter(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])


class TestLinalg:
    def test_symmetrize(self, rng):
        a = rng.normal(size=(5, 5))
        s = symmetrize(a)
        assert np.allclose(s, s.T)

    def test_symmetrize_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            symmetrize(np.zeros((2, 3)))

    def test_lowdin_orthogonalizes(self, rng):
        m = rng.normal(size=(6, 6))
        s = m @ m.T + 6 * np.eye(6)
        x = lowdin_orthogonalization(s)
        assert np.allclose(x.T @ s @ x, np.eye(x.shape[1]), atol=1e-10)

    def test_generalized_eigenproblem_solves_pencil(self, rng):
        m = rng.normal(size=(8, 8))
        s = m @ m.T + 8 * np.eye(8)
        h = symmetrize(rng.normal(size=(8, 8)))
        eps, c = solve_generalized_eigenproblem(h, s)
        assert np.all(np.diff(eps) >= -1e-12)  # ascending
        for k in range(len(eps)):
            assert np.allclose(h @ c[:, k], eps[k] * s @ c[:, k], atol=1e-8)

    def test_density_matrix_idempotent_in_overlap_metric(self, rng):
        m = rng.normal(size=(6, 6))
        s = m @ m.T + 6 * np.eye(6)
        h = symmetrize(rng.normal(size=(6, 6)))
        eps, c = solve_generalized_eigenproblem(h, s)
        f = np.zeros(len(eps))
        f[:2] = 2.0
        p = density_matrix_from_orbitals(c, f)
        # P S P = 2 P for f = 2 occupancy.
        assert np.allclose(p @ s @ p, 2.0 * p, atol=1e-8)

    def test_density_matrix_rejects_mismatch(self, rng):
        c = rng.normal(size=(4, 3))
        with pytest.raises(ValueError):
            density_matrix_from_orbitals(c, np.ones(2))

    @given(n=st.integers(min_value=1, max_value=12))
    def test_pack_unpack_roundtrip(self, n):
        rng = np.random.default_rng(n)
        a = symmetrize(rng.normal(size=(n, n)))
        packed = pack_lower_triangle(a)
        assert packed.shape[0] == n * (n + 1) // 2
        assert np.allclose(unpack_lower_triangle(packed, n), a)

"""Alchemiscale-style contract suite for the service statestore.

Pins the task-lifecycle semantics the whole service layer rests on
(DESIGN §12.2): priority-then-FIFO claiming, impossible double-claims,
lease expiry, bounded retry with backoff, terminal ``errored``,
idempotent content-addressed resubmission, per-client quotas and
byte-faithful journal replay.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import (
    ArtifactError,
    QuotaExceededError,
    ServiceError,
    TaskTransitionError,
)
from repro.service import (
    CANCELLED,
    CLAIMED,
    COMPLETE,
    ERRORED,
    RUNNING,
    WAITING,
    StateStore,
)


def make_store(**kwargs):
    kwargs.setdefault("lease_seconds", 10.0)
    kwargs.setdefault("backoff_base", 1.0)
    kwargs.setdefault("backoff_factor", 2.0)
    return StateStore(**kwargs)


def submit(store, key, **kwargs):
    kwargs.setdefault("now", 0.0)
    return store.submit({"job": key}, key=key, **kwargs)


class TestSubmit:
    def test_submit_creates_waiting_task(self):
        store = make_store()
        out = submit(store, "k1")
        assert out.fresh and not out.cache_hit and not out.deduplicated
        assert out.task.status == WAITING
        assert out.task.key == "k1"
        assert out.task.attempts == 0

    def test_task_ids_are_sequential(self):
        store = make_store()
        ids = [submit(store, f"k{i}").task.task_id for i in range(3)]
        assert ids == ["t-000001", "t-000002", "t-000003"]

    def test_submit_records_client_and_priority(self):
        store = make_store()
        task = submit(store, "k1", client="alice", priority=7).task
        assert task.client == "alice"
        assert task.priority == 7

    def test_negative_max_retries_rejected(self):
        store = make_store()
        with pytest.raises(ServiceError):
            submit(store, "k1", max_retries=-1)


class TestClaim:
    def test_claim_respects_priority_then_fifo(self):
        store = make_store()
        submit(store, "low-a", priority=0)
        submit(store, "high", priority=5)
        submit(store, "low-b", priority=0)
        order = [t.key for t in store.claim("w0", limit=3, now=1.0)]
        assert order == ["high", "low-a", "low-b"]

    def test_claim_marks_task_claimed(self):
        store = make_store()
        submit(store, "k1")
        (task,) = store.claim("w0", now=1.0)
        assert task.status == CLAIMED
        assert task.worker == "w0"
        assert task.attempts == 1
        assert task.lease_expires == pytest.approx(11.0)

    def test_double_claim_impossible(self):
        store = make_store()
        submit(store, "k1")
        assert store.claim("w0", now=1.0)
        assert store.claim("w1", now=1.0) == []

    def test_claim_limit_bounds_batch(self):
        store = make_store()
        for i in range(5):
            submit(store, f"k{i}")
        assert len(store.claim("w0", limit=2, now=1.0)) == 2
        assert len(store.claim("w1", limit=10, now=1.0)) == 3

    def test_claim_skips_backed_off_tasks(self):
        store = make_store()
        submit(store, "k1", max_retries=3)
        (task,) = store.claim("w0", now=1.0)
        store.fail(task.task_id, "w0", "boom", now=2.0)
        # backoff after attempt 1 is base * factor**0 = 1s -> eligible at 3.0
        assert store.claim("w1", now=2.5) == []
        assert [t.key for t in store.claim("w1", now=3.0)] == ["k1"]

    def test_claim_limit_must_be_positive(self):
        store = make_store()
        with pytest.raises(ServiceError):
            store.claim("w0", limit=0, now=1.0)

    def test_terminal_tasks_never_claimable(self):
        store = make_store()
        submit(store, "k1", max_retries=0)
        (task,) = store.claim("w0", now=1.0)
        store.fail(task.task_id, "w0", "boom", now=2.0)
        assert store.get(task.task_id).status == ERRORED
        assert store.claim("w1", now=100.0) == []


class TestWorkerLifecycle:
    def test_start_moves_claimed_to_running(self):
        store = make_store()
        submit(store, "k1")
        (task,) = store.claim("w0", now=1.0)
        store.start(task.task_id, "w0", now=1.5)
        assert store.get(task.task_id).status == RUNNING

    def test_start_by_wrong_worker_rejected(self):
        store = make_store()
        submit(store, "k1")
        (task,) = store.claim("w0", now=1.0)
        with pytest.raises(TaskTransitionError):
            store.start(task.task_id, "w1", now=1.5)

    def test_heartbeat_extends_lease(self):
        store = make_store()
        submit(store, "k1")
        (task,) = store.claim("w0", now=1.0)
        deadline = store.heartbeat(task.task_id, "w0", now=8.0)
        assert deadline == pytest.approx(18.0)
        assert store.expire_leases(now=12.0) == []

    def test_heartbeat_wrong_worker_rejected(self):
        store = make_store()
        submit(store, "k1")
        (task,) = store.claim("w0", now=1.0)
        with pytest.raises(TaskTransitionError):
            store.heartbeat(task.task_id, "w1", now=2.0)

    def test_heartbeat_on_waiting_task_rejected(self):
        store = make_store()
        out = submit(store, "k1")
        with pytest.raises(TaskTransitionError):
            store.heartbeat(out.task.task_id, "w0", now=1.0)

    def test_complete_stores_result(self):
        store = make_store()
        submit(store, "k1")
        (task,) = store.claim("w0", now=1.0)
        store.complete(task.task_id, "w0", {"alpha": 4.5}, now=2.0)
        assert store.get(task.task_id).status == COMPLETE
        assert store.result_for_key("k1") == {"alpha": 4.5}

    def test_complete_by_wrong_worker_rejected(self):
        store = make_store()
        submit(store, "k1")
        (task,) = store.claim("w0", now=1.0)
        with pytest.raises(TaskTransitionError):
            store.complete(task.task_id, "w1", {}, now=2.0)

    def test_complete_unclaimed_task_rejected(self):
        store = make_store()
        out = submit(store, "k1")
        with pytest.raises(TaskTransitionError):
            store.complete(out.task.task_id, "w0", {}, now=1.0)

    def test_complete_twice_rejected(self):
        store = make_store()
        submit(store, "k1")
        (task,) = store.claim("w0", now=1.0)
        store.complete(task.task_id, "w0", {}, now=2.0)
        with pytest.raises(TaskTransitionError):
            store.complete(task.task_id, "w0", {}, now=3.0)

    def test_unknown_task_rejected(self):
        store = make_store()
        with pytest.raises(TaskTransitionError):
            store.heartbeat("t-999999", "w0", now=1.0)
        with pytest.raises(TaskTransitionError):
            store.get("t-999999")


class TestRetryAndBackoff:
    def test_fail_requeues_with_backoff(self):
        store = make_store()
        submit(store, "k1")
        (task,) = store.claim("w0", now=1.0)
        store.fail(task.task_id, "w0", "kaboom", now=2.0)
        t = store.get(task.task_id)
        assert t.status == WAITING
        assert t.error == "kaboom"
        assert t.not_before == pytest.approx(3.0)  # 2.0 + 1*2**0

    def test_backoff_grows_exponentially(self):
        store = make_store()
        out = submit(store, "k1", max_retries=5)
        delays = []
        now = 0.0
        for _ in range(3):
            now = store.get(out.task.task_id).not_before + 0.5
            (task,) = store.claim("w0", now=now)
            store.fail(task.task_id, "w0", "x", now=now)
            delays.append(store.get(task.task_id).not_before - now)
        assert delays == [pytest.approx(1.0), pytest.approx(2.0),
                          pytest.approx(4.0)]

    def test_retry_budget_exhausts_to_errored(self):
        store = make_store()
        out = submit(store, "k1", max_retries=2)
        now = 0.0
        for attempt in range(3):  # 1 first try + 2 retries
            now = store.get(out.task.task_id).not_before + 0.5
            (task,) = store.claim("w0", now=now)
            store.fail(task.task_id, "w0", f"fail {attempt}", now=now)
        final = store.get(out.task.task_id)
        assert final.status == ERRORED
        assert final.attempts == 3
        assert final.terminal


class TestLeaseExpiry:
    def test_expired_lease_requeues(self):
        store = make_store()
        submit(store, "k1")
        (task,) = store.claim("w0", now=1.0)
        expired = store.expire_leases(now=12.0)  # lease was 1.0 + 10.0
        assert [t.task_id for t in expired] == [task.task_id]
        t = store.get(task.task_id)
        assert t.status == WAITING
        assert t.worker is None
        assert "lease expired" in t.error

    def test_unexpired_lease_untouched(self):
        store = make_store()
        submit(store, "k1")
        store.claim("w0", now=1.0)
        assert store.expire_leases(now=10.5) == []

    def test_expiry_applies_to_running_tasks(self):
        store = make_store()
        submit(store, "k1")
        (task,) = store.claim("w0", now=1.0)
        store.start(task.task_id, "w0", now=2.0)
        assert len(store.expire_leases(now=20.0)) == 1
        assert store.get(task.task_id).status == WAITING

    def test_expiry_respects_retry_budget(self):
        store = make_store()
        submit(store, "k1", max_retries=0)
        store.claim("w0", now=1.0)
        (expired,) = store.expire_leases(now=20.0)
        assert store.get(expired.task_id).status == ERRORED

    def test_requeued_task_claimable_by_other_worker(self):
        store = make_store()
        submit(store, "k1")
        store.claim("w0", now=1.0)
        store.expire_leases(now=12.0)
        eligible_at = store.get("t-000001").not_before
        (task,) = store.claim("w1", now=eligible_at + 0.1)
        assert task.worker == "w1"
        assert task.attempts == 2


class TestIdempotentResubmission:
    def test_completed_key_is_cache_hit(self):
        store = make_store()
        submit(store, "k1")
        (task,) = store.claim("w0", now=1.0)
        store.complete(task.task_id, "w0", {"alpha": 1.25}, now=2.0)
        out = submit(store, "k1", now=3.0)
        assert out.cache_hit
        assert out.result == {"alpha": 1.25}
        assert len(store.tasks()) == 1  # no new task enqueued

    def test_live_key_deduplicates(self):
        store = make_store()
        first = submit(store, "k1")
        out = submit(store, "k1", now=1.0)
        assert out.deduplicated
        assert out.task.task_id == first.task.task_id
        assert len(store.tasks()) == 1

    def test_claimed_key_still_deduplicates(self):
        store = make_store()
        submit(store, "k1")
        store.claim("w0", now=1.0)
        assert submit(store, "k1", now=2.0).deduplicated

    def test_errored_key_resubmission_revives(self):
        store = make_store()
        submit(store, "k1", max_retries=0)
        (task,) = store.claim("w0", now=1.0)
        store.fail(task.task_id, "w0", "boom", now=2.0)
        out = submit(store, "k1", now=3.0)
        assert out.resubmitted and out.fresh
        revived = store.get(task.task_id)
        assert revived.status == WAITING
        assert revived.attempts == 0
        assert revived.error == ""
        assert revived.resubmissions == 1

    def test_cancelled_key_resubmission_is_new_task(self):
        store = make_store()
        out = submit(store, "k1")
        store.cancel(out.task.task_id, now=1.0)
        fresh = submit(store, "k1", now=2.0)
        assert fresh.fresh and not fresh.resubmitted
        assert fresh.task.task_id != out.task.task_id


class TestCancel:
    def test_cancel_waiting_task(self):
        store = make_store()
        out = submit(store, "k1")
        store.cancel(out.task.task_id, now=1.0)
        assert store.get(out.task.task_id).status == CANCELLED
        assert store.claim("w0", now=2.0) == []

    def test_cancel_running_task(self):
        store = make_store()
        submit(store, "k1")
        (task,) = store.claim("w0", now=1.0)
        store.start(task.task_id, "w0", now=1.5)
        store.cancel(task.task_id, now=2.0)
        assert store.get(task.task_id).status == CANCELLED

    def test_cancel_terminal_task_rejected(self):
        store = make_store()
        submit(store, "k1")
        (task,) = store.claim("w0", now=1.0)
        store.complete(task.task_id, "w0", {}, now=2.0)
        with pytest.raises(TaskTransitionError):
            store.cancel(task.task_id, now=3.0)


class TestQuotas:
    def test_quota_blocks_excess_live_submissions(self):
        store = make_store()
        store.set_quota("alice", 2)
        submit(store, "k1", client="alice")
        submit(store, "k2", client="alice")
        with pytest.raises(QuotaExceededError) as exc:
            submit(store, "k3", client="alice")
        assert exc.value.client == "alice"
        assert exc.value.active == 2 and exc.value.quota == 2

    def test_quota_does_not_bind_other_clients(self):
        store = make_store()
        store.set_quota("alice", 1)
        submit(store, "k1", client="alice")
        assert submit(store, "k2", client="bob").fresh

    def test_completed_tasks_free_quota(self):
        store = make_store()
        store.set_quota("alice", 1)
        submit(store, "k1", client="alice")
        (task,) = store.claim("w0", now=1.0)
        store.complete(task.task_id, "w0", {}, now=2.0)
        assert submit(store, "k2", client="alice", now=3.0).fresh

    def test_cache_hits_and_dedups_do_not_consume_quota(self):
        store = make_store()
        store.set_quota("alice", 1)
        submit(store, "k1", client="alice")
        # dedup onto the live task is allowed even at the quota edge
        assert submit(store, "k1", client="alice", now=1.0).deduplicated

    def test_negative_quota_rejected(self):
        store = make_store()
        with pytest.raises(ServiceError):
            store.set_quota("alice", -1)


class TestJournalPersistence:
    def test_replay_reproduces_state(self, tmp_path):
        path = tmp_path / "svc" / "journal.jsonl"
        store = make_store(path=path)
        submit(store, "k1", priority=3)
        submit(store, "k2")
        store.set_quota("alice", 2)
        (task,) = store.claim("w0", now=1.0)
        store.complete(task.task_id, "w0", {"alpha": 2.5}, now=2.0)

        replayed = make_store(path=path)
        assert replayed.counts() == store.counts()
        assert replayed.result_for_key("k1") == {"alpha": 2.5}
        assert replayed.get("t-000002").status == WAITING
        assert [t.task_id for t in replayed.tasks()] == ["t-000001", "t-000002"]
        with pytest.raises(QuotaExceededError):
            submit(replayed, "k3", client="alice", now=3.0)
            submit(replayed, "k4", client="alice", now=3.0)
            submit(replayed, "k5", client="alice", now=3.0)

    def test_replay_preserves_claims_for_crash_recovery(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        store = make_store(path=path)
        submit(store, "k1")
        store.claim("w0", now=1.0)
        del store  # simulate service-process crash

        recovered = make_store(path=path)
        t = recovered.get("t-000001")
        assert t.status == CLAIMED and t.worker == "w0"
        recovered.expire_leases(now=12.0)
        assert recovered.get("t-000001").status == WAITING

    def test_journal_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "a" / "b" / "journal.jsonl"
        make_store(path=path)
        assert path.exists()

    def test_corrupt_journal_raises_service_error(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"op": "submit"\n')
        with pytest.raises(ServiceError):
            make_store(path=path)

    def test_journal_lines_are_valid_sorted_json(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        store = make_store(path=path)
        submit(store, "k1")
        (task,) = store.claim("w0", now=1.0)
        store.complete(task.task_id, "w0", {"x": 1}, now=2.0)
        for line in path.read_text().splitlines():
            doc = json.loads(line)
            assert line == json.dumps(doc, sort_keys=True)


class TestArtifactGuard:
    """Satellite fix: the overwrite guard covers the journal path."""

    def test_fresh_over_existing_journal_refused(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        make_store(path=path)
        with pytest.raises(ArtifactError, match="--force"):
            make_store(path=path, fresh=True)

    def test_fresh_with_force_truncates(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        store = make_store(path=path)
        submit(store, "k1")
        fresh = make_store(path=path, fresh=True, force=True)
        assert fresh.tasks() == []
        assert path.read_text() == ""

    def test_directory_path_refused(self, tmp_path):
        with pytest.raises(ArtifactError):
            make_store(path=tmp_path, fresh=True)

    def test_cli_fresh_collision_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "journal.jsonl"
        make_store(path=path)
        rc = main(["status", "--store", str(path), "--fresh"])
        assert rc == 2
        assert "--force" in capsys.readouterr().err


class TestQueriesAndRendering:
    def test_tasks_filter_validates_status(self):
        store = make_store()
        with pytest.raises(ServiceError):
            store.tasks("bogus")

    def test_counts_and_tasks_by_status(self):
        store = make_store()
        submit(store, "k1")
        submit(store, "k2")
        store.claim("w0", now=1.0)
        assert store.counts() == {"waiting": 1, "claimed": 1}
        assert [t.key for t in store.tasks(WAITING)] == ["k2"]

    def test_task_for_key_lookup(self):
        store = make_store()
        out = submit(store, "k1")
        assert store.task_for_key("k1").task_id == out.task.task_id
        assert store.task_for_key("missing") is None

    def test_render_status_mentions_tasks_and_journal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        store = make_store(path=path)
        submit(store, "k1", client="alice")
        text = store.render_status()
        assert "t-000001" in text and "alice" in text
        assert str(path) in text

    def test_invalid_construction_parameters(self):
        with pytest.raises(ServiceError):
            StateStore(lease_seconds=0.0)
        with pytest.raises(ServiceError):
            StateStore(backoff_factor=0.5)

"""Fleet bit-exactness harness: fleet-of-N vs N sequential runs.

The tentpole contract of the fleet driver: executing many molecules
through one shared substrate — shared basis tables, deduplicated
physics groups, interleaved SCF/CPSCF cycles, fused device launches —
changes **no result bytes** relative to running each request through an
isolated :meth:`~repro.core.simulator.PerturbationSimulator.run_physics`.

Pinned here:

* per-request payloads (via :func:`stable_result_bytes`) byte-identical
  to sequential references across all three backends, with screening on
  and off, under shuffled submission order;
* a fleet-of-16 mixed-molecule acceptance run (device backend) with the
  model-throughput account cleared;
* per-molecule profile attribution: fleet per-group profiles sum to the
  shared cache/device totals;
* hypothesis properties: plan permutation-invariance, register-once
  basis tables, scoped LRU-key distinctness;
* service integration: a fleet-mode worker pool drains a statestore to
  the same bytes as a sequential pool (the cache-key path included).
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.atoms import hydrogen_molecule, water
from repro.backends.batched import block_cache_key
from repro.config import RunSettings, get_settings
from repro.core import PerturbationSimulator
from repro.fleet import (
    FleetDriver,
    FleetTask,
    basis_signature,
    fleet_tasks_from_requests,
    physics_fingerprint,
    plan_fleet,
)
from repro.grids.sparsity import DEFAULT_SCREENING_THRESHOLD
from repro.runtime.shm import SharedTableRegistry
from repro.service.jobs import JobRequest, structure_from_dict
from repro.service.worker import result_payload, stable_result_bytes


def h2_requests(n, n_distinct, backend, threshold=0.0, level="minimal"):
    """n requests over n_distinct H2 bond-length variants."""
    settings = get_settings(
        level, backend=backend, screening_threshold=threshold
    )
    return [
        JobRequest(
            hydrogen_molecule(bond_length=1.40 + 0.02 * (i % n_distinct)),
            settings,
            seed=i,
        )
        for i in range(n)
    ]


def sequential_reference(tasks, dedup=False):
    """Per-key stable bytes from isolated sequential runs.

    With ``dedup=False`` every task gets its own full ``run_physics``
    (the literal N-sequential-runs reference); ``dedup=True`` computes
    once per distinct physics payload — legitimate because isolated
    reruns of identical payloads are bitwise identical (pinned by the
    non-dedup configurations of the parity matrix).
    """
    out = {}
    cache = {}
    for task in tasks:
        fp = physics_fingerprint(task.payload)
        if not dedup or fp not in cache:
            structure = structure_from_dict(task.payload["structure"])
            settings = RunSettings.from_canonical_dict(task.payload["settings"])
            sim = PerturbationSimulator(
                structure, settings, charge=int(task.payload.get("charge", 0))
            )
            cache[fp] = (structure, settings, sim.run_physics())
        structure, settings, result = cache[fp]
        out[task.key] = stable_result_bytes(
            result_payload(task, structure, settings, result)
        )
    return out


def fleet_bytes(outcome):
    return {k: stable_result_bytes(v) for k, v in outcome.results.items()}


class TestFleetParityMatrix:
    """Fleet-of-4 (2 distinct H2 variants) vs 4 isolated sequential runs."""

    @pytest.mark.parametrize("backend", ["numpy", "batched", "device"])
    @pytest.mark.parametrize(
        "threshold", [0.0, DEFAULT_SCREENING_THRESHOLD],
        ids=["dense", "screened"],
    )
    def test_fleet_matches_sequential(self, backend, threshold):
        tasks = fleet_tasks_from_requests(
            h2_requests(4, 2, backend, threshold), commit="parity"
        )
        reference = sequential_reference(tasks)
        # Shuffled submission: the plan (and therefore the results) must
        # not depend on request order.
        shuffled = list(tasks)
        random.Random(f"{backend}-{threshold}").shuffle(shuffled)
        outcome = FleetDriver().run_tasks(shuffled)
        assert not outcome.errors
        assert fleet_bytes(outcome) == reference

    def test_interleaving_actually_happened(self):
        """The parity above must cover *interleaved* cycles, not a
        degenerate one-group-at-a-time schedule."""
        tasks = fleet_tasks_from_requests(
            h2_requests(4, 2, "device"), commit="parity"
        )
        outcome = FleetDriver().run_tasks(tasks)
        report = outcome.report
        assert report.n_groups == 2
        # More priced rounds than any single group could produce alone,
        # and fused launch count strictly below the sequential account.
        assert report.rounds > 1
        assert (
            report.device["launches"]["fused"]
            < report.device["launches"]["sequential"]
        )


class TestFleetOf16Acceptance:
    """The issue's acceptance shape: 16 mixed molecules, one backend."""

    def test_mixed_fleet_byte_identical_and_fused(self):
        settings = get_settings("minimal", backend="device")
        molecules = [
            hydrogen_molecule(bond_length=1.40),
            hydrogen_molecule(bond_length=1.42),
            hydrogen_molecule(bond_length=1.44),
            water(),
        ]
        requests = [
            JobRequest(molecules[i % 4], settings, seed=i) for i in range(16)
        ]
        tasks = fleet_tasks_from_requests(requests, commit="accept")
        reference = sequential_reference(tasks, dedup=True)
        outcome = FleetDriver().run_tasks(tasks)
        assert not outcome.errors
        assert fleet_bytes(outcome) == reference
        report = outcome.report
        assert report.n_requests == 16
        assert report.n_groups == 4
        # Two distinct basis signatures (H2, H2O): registered exactly
        # once each, reused by the other same-signature groups.
        assert report.registry["registered"] == 2
        assert report.registry["reused"] == 2
        assert report.substrates == {"built": 4, "reused": 0}
        # The fused model account beats per-group sequential pricing.
        assert report.device["fusion_speedup"] > 1.0


class TestPerMoleculeProfiles:
    """Fleet profiles attribute shared-resource traffic per molecule."""

    def test_batched_cache_counters_sum_to_shared_totals(self):
        tasks = fleet_tasks_from_requests(
            h2_requests(4, 2, "batched"), commit="prof"
        )
        outcome = FleetDriver().run_tasks(tasks)
        assert not outcome.errors
        report = outcome.report
        assert len(report.profiles) == 2
        hits = sum(p["cache"]["hits"] for p in report.profiles.values())
        misses = sum(p["cache"]["misses"] for p in report.profiles.values())
        evictions = sum(
            p["cache"]["evictions"] for p in report.profiles.values()
        )
        assert hits == report.cache["hits"] > 0
        assert misses == report.cache["misses"] > 0
        assert evictions == report.cache["evictions"]
        # Every per-molecule profile saw real traffic of its own.
        assert all(
            p["cache"]["hits"] > 0 and p["cache"]["misses"] > 0
            for p in report.profiles.values()
        )

    def test_device_counters_sum_to_shared_totals(self):
        tasks = fleet_tasks_from_requests(
            h2_requests(4, 2, "device"), commit="prof"
        )
        outcome = FleetDriver().run_tasks(tasks)
        assert not outcome.errors
        report = outcome.report
        launches = sum(
            p["device"]["launches"] for p in report.profiles.values()
        )
        transferred = sum(
            p["device"]["bytes_transferred"] for p in report.profiles.values()
        )
        modeled = sum(
            p["device"]["modeled_seconds"] for p in report.profiles.values()
        )
        assert launches == report.device["launches"]["sequential"] > 0
        assert transferred == report.device["bytes_transferred"] > 0
        # Per-molecule profiles carry the *unfused* prices; their sum is
        # the device's sequential account (float association aside).
        sequential = report.device["modeled"]["sequential"]["modeled_seconds"]
        assert np.isclose(modeled, sequential, rtol=1e-12, atol=0.0)
        assert (
            report.device["modeled"]["fused"]["modeled_seconds"] < sequential
        )


class TestGroupIsolation:
    def test_failing_group_poisons_only_its_own_requests(self):
        settings = get_settings("minimal")
        good = JobRequest(hydrogen_molecule(), settings, seed=0)
        # charge=1 leaves one electron: the restricted driver refuses.
        bad = JobRequest(hydrogen_molecule(), settings, charge=1, seed=1)
        tasks = fleet_tasks_from_requests([good, bad], commit="iso")
        outcome = FleetDriver().run_tasks(tasks)
        assert set(outcome.results) == {tasks[0].key}
        assert set(outcome.errors) == {tasks[1].key}
        assert "SCFConvergenceError" in outcome.errors[tasks[1].key]


class TestPlanProperties:
    @given(
        payload_ids=st.lists(
            st.integers(min_value=0, max_value=3), min_size=1, max_size=12
        ),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @hsettings(max_examples=40, deadline=None)
    def test_plan_is_permutation_invariant(self, payload_ids, seed):
        tasks = [
            FleetTask(key=f"k{i}", payload={"structure": {"x": pid}})
            for i, pid in enumerate(payload_ids)
        ]
        shuffled = list(tasks)
        random.Random(seed).shuffle(shuffled)
        assert plan_fleet(tasks).canonical() == plan_fleet(shuffled).canonical()
        assert len(plan_fleet(tasks).groups) == len(set(payload_ids))

    @given(
        seeds=st.lists(
            st.integers(min_value=0, max_value=2**16), min_size=2, max_size=8
        )
    )
    @hsettings(max_examples=20, deadline=None)
    def test_seed_never_splits_a_group(self, seeds):
        payloads = [
            {"structure": {"x": 1}, "settings": {"a": 2}, "seed": s}
            for s in seeds
        ]
        assert len({physics_fingerprint(p) for p in payloads}) == 1


class TestSharedTableProperties:
    @given(
        keys=st.lists(
            st.sampled_from(["light:H", "light:H|O", "light:C|H"]),
            min_size=1,
            max_size=20,
        )
    )
    @hsettings(max_examples=40, deadline=None)
    def test_registered_once_per_distinct_key(self, keys):
        registry = SharedTableRegistry()
        builds = {"n": 0}

        def build():
            builds["n"] += 1
            return [np.zeros(3)]

        for key in keys:
            registry.register(key, build)
        distinct = len(set(keys))
        assert registry.registered == builds["n"] == distinct
        assert registry.reused == len(keys) - distinct

    def test_registered_arrays_are_read_only(self):
        registry = SharedTableRegistry()
        h2 = hydrogen_molecule()
        from repro.fleet import register_basis_tables

        (first, *rest) = register_basis_tables(registry, h2)
        assert basis_signature(h2) == "light:H"
        with pytest.raises(ValueError):
            first[0] = 99.0


class TestScopedCacheKeys:
    @given(
        batch=st.integers(min_value=0, max_value=500),
        scopes=st.lists(
            st.text(
                alphabet="abcdef0123456789", min_size=1, max_size=8
            ),
            min_size=2,
            max_size=5,
            unique=True,
        ),
        active_hash=st.one_of(st.none(), st.sampled_from(["a1", "b2"])),
    )
    @hsettings(max_examples=60, deadline=None)
    def test_distinct_scopes_never_collide(self, batch, scopes, active_hash):
        keys = {
            block_cache_key(batch, scope=s, active_hash=active_hash)
            for s in scopes
        }
        assert len(keys) == len(scopes)
        # Scoped keys never collide with the unscoped single-molecule
        # layouts either (plain int / (batch, hash) tuple).
        assert block_cache_key(batch) not in keys
        assert block_cache_key(batch, active_hash="a1") not in keys


class TestServiceFleetParity:
    """The statestore cache-key path: fleet pool == sequential pool."""

    def test_fleet_pool_drains_to_sequential_bytes(self):
        from repro.service import StateStore, WorkerPool, submit_batch
        from repro.service.statestore import COMPLETE

        requests = h2_requests(2, 2, "numpy")

        def drain(fleet):
            store = StateStore(lease_seconds=5.0)
            submit_batch(store, requests, commit="svc", now=0.0)
            pool = WorkerPool(store, n_workers=1, fleet=fleet)
            report = pool.run_until_idle()
            assert report.completed == 2
            return {
                t.key: stable_result_bytes(store.result_for_key(t.key))
                for t in store.tasks(COMPLETE)
            }

        assert drain(None) == drain(2)

"""The cubic-spline kernel: exactness, derivatives, coefficient sizes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.basis.spline import CubicSpline, spline_coefficient_nbytes


class TestCubicSpline:
    def test_interpolates_knots_exactly(self, rng):
        x = np.sort(rng.uniform(0, 10, 20))
        x[0], x[-1] = 0.0, 10.0
        x = np.unique(x)
        y = rng.normal(size=x.shape)
        s = CubicSpline(x, y)
        assert np.allclose(s(x), y, atol=1e-12)

    def test_exact_on_linear_functions(self):
        x = np.linspace(0, 5, 17)
        y = 3.0 * x - 1.0
        s = CubicSpline(x, y)
        t = np.linspace(0, 5, 301)
        assert np.allclose(s(t), 3.0 * t - 1.0, atol=1e-12)
        assert np.allclose(s.derivative(t), 3.0, atol=1e-12)

    def test_converges_on_smooth_function(self):
        x = np.linspace(0, np.pi, 200)
        s = CubicSpline(x, np.sin(x))
        t = np.linspace(0.1, np.pi - 0.1, 500)
        assert np.abs(s(t) - np.sin(t)).max() < 1e-6
        assert np.abs(s.derivative(t) - np.cos(t)).max() < 1e-4

    def test_clamps_outside_range(self):
        x = np.linspace(1.0, 2.0, 5)
        s = CubicSpline(x, x**2)
        assert s(0.0) == pytest.approx(1.0)
        assert s(3.0) == pytest.approx(4.0)

    def test_vector_valued(self, rng):
        x = np.linspace(0, 1, 10)
        y = rng.normal(size=(10, 4))
        s = CubicSpline(x, y)
        out = s(np.array([0.25, 0.75]))
        assert out.shape == (2, 4)
        assert np.allclose(s(x), y, atol=1e-12)

    def test_scalar_input_keeps_shape(self):
        s = CubicSpline(np.linspace(0, 1, 5), np.zeros(5))
        assert np.isscalar(s(0.5)) or s(0.5).shape == ()

    def test_validation(self):
        with pytest.raises(ValueError):
            CubicSpline(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            CubicSpline(np.array([1.0, 1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            CubicSpline(np.array([2.0, 1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            CubicSpline(np.linspace(0, 1, 4), np.zeros(5))

    def test_derivative_matches_finite_difference(self, rng):
        x = np.linspace(0, 2, 30)
        y = np.exp(-x) * np.sin(3 * x)
        s = CubicSpline(x, y)
        t = np.linspace(0.2, 1.8, 50)
        h = 1e-6
        fd = (s(t + h) - s(t - h)) / (2 * h)
        assert np.allclose(s.derivative(t), fd, atol=1e-6)

    @given(n=st.integers(min_value=4, max_value=40))
    @settings(max_examples=25, deadline=None)
    def test_natural_boundary_second_derivative_zero(self, n):
        """Natural splines have y'' = 0 at both ends (property)."""
        rng = np.random.default_rng(n)
        x = np.linspace(0, 1, n)
        y = rng.normal(size=n)
        s = CubicSpline(x, y)
        assert s.m[0] == pytest.approx(0.0)
        assert s.m[-1] == pytest.approx(0.0)

    @given(
        a=st.floats(-2, 2),
        b=st.floats(-2, 2),
        c=st.floats(-2, 2),
    )
    @settings(max_examples=30, deadline=None)
    def test_quadratic_reproduced_inside_with_dense_knots(self, a, b, c):
        """Dense natural splines approximate quadratics well away from ends."""
        x = np.linspace(-1, 1, 120)
        y = a * x**2 + b * x + c
        s = CubicSpline(x, y)
        t = np.linspace(-0.7, 0.7, 41)
        assert np.allclose(s(t), a * t**2 + b * t + c, atol=1e-4)

    def test_coefficient_nbytes_matches_prediction(self):
        n, k = 37, 5
        s = CubicSpline(np.linspace(0, 1, n), np.zeros((n, k)))
        assert s.coefficient_nbytes == spline_coefficient_nbytes(n, k)

    def test_coefficient_nbytes_validation(self):
        with pytest.raises(ValueError):
            spline_coefficient_nbytes(1, 1)
        with pytest.raises(ValueError):
            spline_coefficient_nbytes(5, 0)

# Convenience entry points; all targets assume the in-tree layout
# (src/ on PYTHONPATH, no install needed).

PYTHON ?= python

.PHONY: test chaos smoke bench-smoke verify

# Tier-1: the fast default profile (chaos sweeps deselected via addopts).
test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Full randomized fault-injection sweeps.
chaos:
	PYTHONPATH=src $(PYTHON) -m pytest -m chaos -q

# Just the fault/resilience smoke subset (also part of `make test`).
smoke:
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/test_faults.py

# Quick execution-backend comparison (numpy vs batched vs device) on an
# over-cache-limit system; writes BENCH_backends.json at the repo root.
bench-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_backends.py --quick

# Physics-invariant + golden + differential-conformance check on H2.
# `python -m repro verify` (no args) covers both reference molecules.
verify:
	PYTHONPATH=src $(PYTHON) -m repro verify --molecule h2

# Convenience entry points; all targets assume the in-tree layout
# (src/ on PYTHONPATH, no install needed).

PYTHON ?= python

.PHONY: test chaos smoke bench-smoke bench-check docs-check docs trace \
	analyze history-check service-check fleet-check tune-check slo-check \
	verify

# Tier-1: the fast default profile (chaos sweeps deselected via addopts).
test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Full randomized fault-injection sweeps.
chaos:
	PYTHONPATH=src $(PYTHON) -m pytest -m chaos -q

# Just the fault/resilience smoke subset (also part of `make test`).
smoke:
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/test_faults.py

# Quick execution-backend comparison (numpy vs batched vs device) on an
# over-cache-limit system, plus the dense-vs-screened block-sparse
# payoff on a polyethylene chain; writes BENCH_backends.json and
# BENCH_sparse.json at the repo root.
bench-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_backends.py --quick
	PYTHONPATH=src $(PYTHON) benchmarks/bench_sparse.py --quick
	PYTHONPATH=src $(PYTHON) benchmarks/bench_fleet.py --quick \
		--output /tmp/BENCH_fleet_quick.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_tuner.py --quick \
		--output /tmp/BENCH_tuner_quick.json

# Perf-regression gate: re-run each benchmark at its committed
# baseline's own parameters and compare metric-by-metric (exact bands
# for deterministic counters, one-sided bands for wall times/speedups).
# Every run appends one provenance-stamped entry to BENCH_history.jsonl.
bench-check:
	PYTHONPATH=src $(PYTHON) -m repro bench-check --baseline BENCH_backends.json \
		--history BENCH_history.jsonl
	PYTHONPATH=src $(PYTHON) -m repro bench-check --baseline BENCH_sparse.json \
		--history BENCH_history.jsonl

# Documentation gate: every doctest in the observability-facing modules
# must run, every audited public object must carry a docstring, and the
# generated CLI/settings reference (docs/CLI.md, docs/SETTINGS.md) must
# match what the code actually exposes.
docs-check:
	PYTHONPATH=src $(PYTHON) -m pytest --doctest-modules -q \
		src/repro/obs src/repro/service src/repro/utils/timing.py \
		src/repro/utils/balance.py src/repro/utils/artifacts.py \
		src/repro/runtime/trace.py src/repro/testing/docs.py \
		src/repro/grids/sparsity.py src/repro/fleet src/repro/tune
	PYTHONPATH=src $(PYTHON) tools/check_docstrings.py
	PYTHONPATH=src $(PYTHON) tools/gen_cli_docs.py --check

# Regenerate the committed CLI/settings reference from the code.
docs:
	PYTHONPATH=src $(PYTHON) tools/gen_cli_docs.py

# Span trace of a real physics run, openable at https://ui.perfetto.dev.
# --force: the artifacts are regenerated on every invocation.
trace:
	PYTHONPATH=src $(PYTHON) -m repro trace --molecule water --level minimal \
		--out trace.json --report run_report.json --force

# Post-mortem analytics: record a trace, then render the timeline /
# critical-path / imbalance dashboard and the scaling-attribution tables.
analyze:
	PYTHONPATH=src $(PYTHON) -m repro trace --molecule water --level minimal \
		--out trace.json --report run_report.json --force
	PYTHONPATH=src $(PYTHON) -m repro analyze trace trace.json --top 12
	PYTHONPATH=src $(PYTHON) -m repro analyze scaling --atoms 602 \
		--base-ranks 8 --points 2

# Trend detection over the benchmark history (non-fatal when empty).
history-check:
	PYTHONPATH=src $(PYTHON) -m repro analyze history --path BENCH_history.jsonl

# Simulation-service correctness contract: the statestore + cache-key
# suites, the default-off worker-crash chaos sweeps, and the end-to-end
# CLI demo (second identical submit must be a cache hit served from the
# journal-replayed result store, no recomputation).
service-check:
	PYTHONPATH=src $(PYTHON) -m pytest -q \
		tests/test_service_statestore.py tests/test_service_keys.py
	PYTHONPATH=src $(PYTHON) -m pytest -q -m service tests/test_service_chaos.py
	rm -rf .service-demo
	PYTHONPATH=src $(PYTHON) -m repro submit --molecule h2 --level minimal \
		--store .service-demo/journal.jsonl
	PYTHONPATH=src $(PYTHON) -m repro submit --molecule h2 --level minimal \
		--store .service-demo/journal.jsonl | grep -q "cache hit"
	PYTHONPATH=src $(PYTHON) -m repro status --store .service-demo/journal.jsonl
	rm -rf .service-demo

# Fleet contract: the bit-exactness parity suite (fleet-of-N vs N
# sequential runs across backends/screening/submission order) plus the
# fleet-throughput regression gate against the committed baseline.
fleet-check:
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/test_fleet.py
	PYTHONPATH=src $(PYTHON) -m repro bench-check --baseline BENCH_fleet.json \
		--history BENCH_history.jsonl

# Auto-tuner contract: the decision determinism/round-trip/never-slower
# property suite plus the tuned-vs-default regression gate against the
# committed baseline (its own lineage in BENCH_history.jsonl).
tune-check:
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/test_tune.py
	PYTHONPATH=src $(PYTHON) -m repro bench-check --baseline BENCH_tuner.json \
		--history BENCH_history.jsonl

# Service-telemetry contract: the rollup/alert/health property suite
# plus the deterministic SLO scenario gated against its committed
# baseline (steady run fires zero alerts; the seeded worker_crash
# chaos run fires the crash-rate alert byte-stably).
slo-check:
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/test_telemetry.py
	PYTHONPATH=src $(PYTHON) -m repro slo --gate BENCH_slo.json

# Physics-invariant + golden + differential-conformance check on H2,
# plus the perf-regression, documentation, history-trend, service,
# fleet, tuner and telemetry gates (all tier-1 sized).
# `python -m repro verify` (no args) covers both reference molecules.
verify: bench-check docs-check history-check service-check fleet-check \
		tune-check slo-check
	PYTHONPATH=src $(PYTHON) -m repro verify --molecule h2

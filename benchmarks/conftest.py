"""Benchmark harness configuration.

Each ``bench_fig*.py`` module regenerates one of the paper's evaluation
figures: the benchmarked callable produces the figure's data series and
the rendered table is printed (and attached to ``extra_info``) so that
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation
section end to end.

Set ``REPRO_FULL_SCALE=1`` to sweep the paper's complete parameter grid
(up to 200 012 atoms / 40 000 ranks); the default grid is a faithful
subset that runs in a few minutes.
"""

from __future__ import annotations

import pytest

from repro.testing import fixtures as _factories


@pytest.fixture
def make_machine():
    """Factory fixture over :func:`repro.testing.fixtures.make_machine`."""
    return _factories.make_machine


@pytest.fixture
def make_cluster():
    """Factory fixture over :func:`repro.testing.fixtures.make_cluster`."""
    return _factories.make_cluster


def emit(benchmark, table: str) -> None:
    """Attach a rendered figure table to the benchmark and print it."""
    benchmark.extra_info["figure"] = table
    print()
    print(table)

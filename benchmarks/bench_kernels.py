"""Micro-benchmarks of the real computational substrates.

Unlike the figure benches (which exercise the scale models), these time
the actual numerics: spline evaluation, spherical harmonics, basis
evaluation, the multipole Poisson solve, one CPSCF iteration and the
executable reduction schemes.
"""

import numpy as np
import pytest

from repro.atoms import water
from repro.basis import CubicSpline, build_basis, real_spherical_harmonics
from repro.comm import BaselineRowwiseAllreduce, PackedAllreduce
from repro.config import get_settings
from repro.dfpt import DFPTSolver
from repro.dft import MultipoleSolver, SCFDriver, density_on_grid
from repro.grids import build_grid
from repro.runtime import HPC1_SUNWAY, SimCluster


@pytest.fixture(scope="module")
def water_gs():
    return SCFDriver(water(), get_settings("minimal")).run()


def test_bench_spline_evaluation(benchmark):
    rng = np.random.default_rng(0)
    spline = CubicSpline(np.linspace(0, 10, 320), rng.normal(size=(320, 49)))
    t = rng.uniform(0, 10, 20000)
    out = benchmark(spline, t)
    assert out.shape == (20000, 49)


def test_bench_spherical_harmonics(benchmark):
    rng = np.random.default_rng(1)
    dirs = rng.normal(size=(20000, 3))
    out = benchmark(real_spherical_harmonics, dirs, 6)
    assert out.shape == (20000, 49)


def test_bench_basis_evaluation(benchmark):
    basis = build_basis(water())
    rng = np.random.default_rng(2)
    pts = rng.normal(size=(5000, 3)) * 2.0
    out = benchmark(basis.evaluate, pts)
    assert out.shape == (5000, 21)


def test_bench_multipole_poisson(benchmark, water_gs):
    solver = water_gs.solver
    density = water_gs.density
    out = benchmark(solver.hartree_potential, density)
    assert out.shape == (water_gs.grid.n_points,)


def test_bench_density_on_grid(benchmark, water_gs):
    out = benchmark(density_on_grid, water_gs.builder, water_gs.density_matrix)
    assert out.shape == (water_gs.grid.n_points,)


def test_bench_cpscf_direction(benchmark, water_gs):
    settings = get_settings("minimal").cpscf
    result = benchmark.pedantic(
        lambda: DFPTSolver(water_gs, settings).solve_direction(2),
        iterations=1,
        rounds=3,
    )
    assert result.iterations >= 1


def test_bench_reduction_baseline_vs_packed(benchmark):
    """Executable reduction over real buffers (16 ranks, 200 rows)."""
    rng = np.random.default_rng(3)
    cluster = SimCluster(HPC1_SUNWAY, 16)
    data = [rng.normal(size=(200, 64)) for _ in range(16)]

    def run():
        out_b, _ = BaselineRowwiseAllreduce().reduce(cluster, data)
        out_p, _ = PackedAllreduce(rows_cap=50).reduce(cluster, data)
        return out_b, out_p

    out_b, out_p = benchmark(run)
    assert np.array_equal(out_b, out_p)

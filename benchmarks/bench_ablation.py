"""Ablation study: each innovation's individual contribution.

Not a paper figure, but the design-choice breakdown DESIGN.md calls
for: starting from the fully optimized configuration, each flag is
switched off alone and the per-cycle slowdown recorded.
"""

from conftest import emit

from repro.core import OptimizationFlags
from repro.experiments.common import polyethylene_simulator
from repro.runtime import HPC2_AMD
from repro.utils.reports import TableFormatter, format_seconds

FLAGS = (
    "locality_mapping",
    "packed_comm",
    "hierarchical_comm",
    "kernel_fusion",
    "indirect_elimination",
    "loop_collapse",
)


def run_ablation(n_atoms: int = 30002, ranks: int = 2048):
    sim = polyethylene_simulator(n_atoms)
    full = sim.run_model(HPC2_AMD, ranks)
    rows = []
    for flag in FLAGS:
        rep = sim.run_model(HPC2_AMD, ranks, OptimizationFlags.all().but(**{flag: False}))
        rows.append((flag, rep.cycle_seconds, rep.cycle_seconds / full.cycle_seconds))
    return full, rows


def test_ablation_contributions(benchmark):
    full, rows = benchmark.pedantic(run_ablation, iterations=1, rounds=1)
    table = TableFormatter(
        ["disabled flag", "cycle time", "slowdown vs full"],
        title="Ablation: 30 002 atoms, 2 048 ranks, HPC#2",
    )
    table.add_row(["(none - fully optimized)", format_seconds(full.cycle_seconds), "1.00x"])
    for flag, seconds, slowdown in rows:
        table.add_row([flag, format_seconds(seconds), f"{slowdown:.2f}x"])
    emit(benchmark, table.render())
    # Every ablation must cost something or be neutral - never help.
    assert all(slowdown >= 0.999 for _, _, slowdown in rows)
    # Locality and packing are the load-bearing optimizations.
    by_flag = {flag: slowdown for flag, _, slowdown in rows}
    assert by_flag["packed_comm"] > 1.5

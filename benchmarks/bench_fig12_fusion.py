"""Figure 12 — fusing the widely-dependent v(1) kernels."""

from conftest import emit

from repro.experiments import run_fig12a_volumes, run_fig12b_horizontal
from repro.experiments.common import full_scale_enabled
from repro.experiments.fig12_fusion import PAPER_SWEEP_12B

_QUICK = {30002: (256, 1024, 4096)}


def test_fig12a_shared_data_vs_rma(benchmark):
    """rho_multipole_spl fits the 64 KB RMA window; delta_v_hart_part_spl doesn't."""
    result = benchmark.pedantic(run_fig12a_volumes, iterations=1, rounds=1)
    emit(benchmark, result.render())
    assert result.vertical_applied["rho_multipole_spl"]
    assert not result.vertical_applied["delta_v_hart_part_spl"]


def test_fig12b_horizontal_fusion(benchmark):
    sweep = PAPER_SWEEP_12B if full_scale_enabled() else _QUICK
    result = benchmark.pedantic(
        run_fig12b_horizontal, kwargs={"sweep": sweep}, iterations=1, rounds=1
    )
    emit(benchmark, result.render())
    speedups = result.speedups()
    assert all(1.0 < s < 4.0 for s in speedups)  # paper: 1.1x - 2.4x

"""Tuner regression benchmark: tuned vs hand-picked default configs.

Runs the closed loop (:func:`repro.tune.tuner.tune`) over the two
committed bench workloads — the water molecule and a short polyethylene
chain — and records each full
:class:`~repro.tune.decision.TunerDecision`: searched space, predicted
and measured modeled costs of the short list, chosen configuration,
provenance.  The committed gate pins that

* the deterministic cost-model floats are byte-stable (a cost-model
  change trips the relative band and names the tuner), and
* the chosen config is never slower than the hand-picked default
  (``tuned_speedup_vs_default`` / ``predicted_speedup_vs_default``
  floor bands — both are >= 1 by the tuner's fallback guarantee).

The measurement lives in :func:`repro.obs.bench.tuner_emission` (shared
with the ``repro bench-check`` regression gate); this script prints the
per-workload decision tables, writes ``BENCH_tuner.json`` at the repo
root, and fails if any decision came out slower than its default.
Run::

    PYTHONPATH=src python benchmarks/bench_tuner.py [--quick]

or via ``make bench-smoke``.  Compare a fresh run against the committed
baseline with ``make tune-check`` (part of ``make verify``).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.obs.bench import tuner_emission
from repro.obs.report import Provenance
from repro.tune.decision import TunerDecision

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_tuner.json"

#: Full-run measured-stage budget (distinct trial runs per workload).
BUDGET = 2

#: Ranks the mapping/comm terms are priced at.
N_RANKS = 4


def run(budget: int, n_ranks: int, level: str) -> dict:
    report = tuner_emission(level=level, n_ranks=n_ranks, budget=budget)
    for name, entry in sorted(report["workloads"].items()):
        decision = TunerDecision.from_dict(entry["decision"])
        print(f"=== {name} ===")
        print(decision.render_ascii())
        print()
    print(Provenance(**report["provenance"]).footer_markdown())
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="single-trial budget (model stage still prices everything)",
    )
    parser.add_argument("--budget", type=int, default=None)
    parser.add_argument("--ranks", type=int, default=N_RANKS)
    parser.add_argument("--output", type=Path, default=OUTPUT)
    args = parser.parse_args(argv)
    budget = args.budget or (1 if args.quick else BUDGET)
    report = run(budget, args.ranks, level="minimal")
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    slow = [
        name
        for name, entry in sorted(report["workloads"].items())
        if entry["tuned_speedup_vs_default"] < 1.0
        or entry["predicted_speedup_vs_default"] < 1.0
    ]
    if slow:
        print(
            "WARNING: tuned config slower than the hand-picked default "
            "for: " + ", ".join(slow)
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

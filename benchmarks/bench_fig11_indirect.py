"""Figure 11 — init-phase speedups from indirect-access elimination."""

from conftest import emit

from repro.experiments import run_fig11_indirect
from repro.experiments.common import full_scale_enabled
from repro.experiments.fig11_indirect import PAPER_SWEEP

_QUICK = {30002: (256, 1024, 4096)}


def test_fig11_indirect_elimination(benchmark):
    sweep = PAPER_SWEEP if full_scale_enabled() else _QUICK
    result = benchmark.pedantic(
        run_fig11_indirect, kwargs={"sweep": sweep}, iterations=1, rounds=1
    )
    emit(benchmark, result.render())
    # Both machines gain; HPC#1 (no latency hiding) gains more.
    s1, s2 = result.speedups("HPC#1"), result.speedups("HPC#2")
    assert min(s1) > 1.5 and min(s2) > 1.0
    assert max(s1) > max(s2)

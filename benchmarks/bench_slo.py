"""Service-telemetry SLO benchmark: the committed steady/chaos scenario.

Runs the deterministic SLO scenario pair behind ``repro slo`` — a
steady drain of eight synthetic jobs over two workers, then the same
fleet under a seeded ``worker_crash`` FaultPlan that kills worker w0's
first two claims — and records the full windowed rollup document:
per-window counts, deterministic queue-wait/time-to-result percentiles,
crash/cache-hit rates, and the alert transitions the default rule set
produces (the chaos run must fire ``crash_rate_spike`` at window 0 and
clear it at window 2; the steady run must stay silent).

The measurement lives in :func:`repro.obs.telemetry.slo.slo_emission`
(shared with the ``repro slo --gate`` regression gate); this script
prints the scenario dashboards, writes ``BENCH_slo.json`` at the repo
root, and fails if the alert contract is violated.  Run::

    PYTHONPATH=src python benchmarks/bench_slo.py

or regenerate the committed baseline in place with ``--output``.
Compare a fresh run against the committed baseline with
``make slo-check`` (part of ``make verify``).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.obs.report import Provenance
from repro.obs.telemetry import render_slo_emission, slo_emission
from repro.obs.telemetry.slo import DEFAULT_WINDOW, SLO_SEED

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_slo.json"


def run(seed: int, window: float) -> dict:
    emission = slo_emission(seed=seed, window=window)
    print(render_slo_emission(emission))
    print()
    print(Provenance(**emission["provenance"]).footer_markdown())
    return emission


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=SLO_SEED)
    parser.add_argument("--window", type=float, default=DEFAULT_WINDOW)
    parser.add_argument("--output", type=Path, default=OUTPUT)
    args = parser.parse_args(argv)
    report = run(args.seed, args.window)
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    steady = report["scenarios"]["steady"]["alerts"]
    chaos = report["scenarios"]["chaos"]["alerts"]
    broken = []
    if steady["total_fired"]:
        broken.append("steady scenario fired alerts")
    if "crash_rate_spike" not in chaos["by_rule"]:
        broken.append("chaos scenario did not fire crash_rate_spike")
    if broken:
        print("WARNING: " + "; ".join(broken))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 15 — strong scaling and time-to-solution per cycle."""

from conftest import emit

from repro.experiments import run_fig15_strong, run_fig15b_time_per_cycle
from repro.experiments.common import full_scale_enabled


def test_fig15a_strong_scaling(benchmark):
    if full_scale_enabled():
        kwargs = {}  # paper grid: 60 002 atoms, up to 40 000 ranks
    else:
        kwargs = {
            "n_atoms": 30002,
            "ranks_hpc1": (2500, 5000, 10000),
            "ranks_hpc2": (1024, 2048, 4096),
        }
    result = benchmark.pedantic(run_fig15_strong, kwargs=kwargs, iterations=1, rounds=1)
    emit(benchmark, result.render())
    for series in result.series:
        sp = series.speedups()
        assert all(b > a for a, b in zip(sp, sp[1:]))  # monotone speedup
        assert 0.3 < series.efficiencies()[-1] <= 1.05


def test_fig15b_time_per_cycle(benchmark):
    cases = (
        ((15002, 1024), (30002, 2048), (60002, 4096), (117602, 8192), (200012, 16384))
        if full_scale_enabled()
        else ((15002, 1024), (30002, 2048), (60002, 4096))
    )
    result = benchmark.pedantic(
        run_fig15b_time_per_cycle, kwargs={"cases": cases}, iterations=1, rounds=1
    )
    emit(benchmark, result.render())
    # The paper's headline: a CPSCF cycle completes within a minute.
    for _, _, _, total in result.rows:
        assert total < 60.0

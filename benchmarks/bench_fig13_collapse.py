"""Figure 13 — fine-grained parallelization of the (p, m) loop."""

from conftest import emit

from repro.experiments import run_fig13_collapse
from repro.experiments.common import full_scale_enabled
from repro.experiments.fig13_collapse import PAPER_SWEEP_13

_QUICK = {30002: (256, 1024, 4096), 60002: (2048, 8192)}


def test_fig13_loop_collapse(benchmark):
    sweep = PAPER_SWEEP_13 if full_scale_enabled() else _QUICK
    result = benchmark.pedantic(
        run_fig13_collapse, kwargs={"sweep": sweep}, iterations=1, rounds=1
    )
    emit(benchmark, result.render())
    speedups = result.speedups()
    assert all(1.0 <= s < 1.6 for s in speedups)  # paper: up to 1.34x
    # Gains grow as per-rank work shrinks.
    assert speedups[-1] >= speedups[0]

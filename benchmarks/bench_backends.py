"""Execution-backend comparison on an over-cache-limit system.

Forces ``cache_limit=0`` so the full basis table may not be held, then
times repeated Sumup + H phase sweeps (the SCF/CPSCF hot loop) under
each registered backend:

* ``numpy``  — the legacy over-limit path: every sweep re-evaluates
  every basis block from scratch.
* ``batched`` — bounded LRU block cache: blocks are evaluated once and
  streamed from the cache on later sweeps.
* ``device`` — priced OpenCL-model launches over staged device buffers.

Results (wall seconds, per-phase profiles, batched-vs-numpy speedup) are
written to ``BENCH_backends.json`` at the repo root and printed as a
table.  Run directly::

    PYTHONPATH=src python benchmarks/bench_backends.py [--quick]

or via ``make bench-smoke``.  All three backends are verified
bit-identical on every sweep before any timing is reported.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.atoms import water
from repro.basis import build_basis
from repro.config import get_settings
from repro.dft.hamiltonian import MatrixBuilder
from repro.grids import build_grid
from repro.utils.reports import TableFormatter, format_bytes, format_seconds

BACKENDS = ("numpy", "batched", "device")
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_backends.json"


def build_builders(level: str, cache_limit: int):
    """One MatrixBuilder per backend over a shared basis/grid/batches."""
    structure = water()
    settings = get_settings(level)
    basis = build_basis(structure)
    grid = build_grid(structure, settings.grids, with_partition=True)
    reference = MatrixBuilder(
        basis, grid, backend="numpy", cache_limit=cache_limit
    )
    builders = {"numpy": reference}
    for name in BACKENDS[1:]:
        builders[name] = MatrixBuilder(
            basis,
            grid,
            batches=reference.batches,
            backend=name,
            cache_limit=cache_limit,
        )
    return builders


def sweep(builder: MatrixBuilder, n_sweeps: int, seed: int = 2023) -> dict:
    """Time ``n_sweeps`` Sumup + H passes; return wall time and outputs."""
    rng = np.random.default_rng(seed)
    nb = builder.basis.n_basis
    p = rng.normal(size=(nb, nb))
    p = p + p.T
    v = rng.normal(size=builder.grid.n_points)
    density = potential = None
    start = time.perf_counter()
    for _ in range(n_sweeps):
        density = builder.backend.density_on_grid(p)
        potential = builder.potential_matrix(v)
    wall = time.perf_counter() - start
    return {"wall": wall, "density": density, "potential": potential}


def run(n_sweeps: int, level: str) -> dict:
    builders = build_builders(level, cache_limit=0)
    n_points = builders["numpy"].grid.n_points
    nb = builders["numpy"].basis.n_basis
    print(
        f"water ({level}): {n_points:,} grid points x {nb} basis functions, "
        f"{len(builders['numpy'].batches)} batches, cache_limit=0 "
        f"(full table disallowed), {n_sweeps} Sumup+H sweeps"
    )

    results = {}
    for name in BACKENDS:
        results[name] = sweep(builders[name], n_sweeps)

    ref = results["numpy"]
    for name in BACKENDS[1:]:
        if not np.array_equal(ref["density"], results[name]["density"]):
            raise AssertionError(f"{name} density diverged from numpy")
        if not np.array_equal(ref["potential"], results[name]["potential"]):
            raise AssertionError(f"{name} potential matrix diverged from numpy")

    table = TableFormatter(
        ["backend", "wall", "speedup vs numpy", "cache peak", "launches"],
        title="backend comparison (bit-identical outputs)",
    )
    report = {
        "system": "water",
        "level": level,
        "n_points": n_points,
        "n_basis": nb,
        "n_sweeps": n_sweeps,
        "cache_limit": 0,
        "backends": {},
    }
    for name in BACKENDS:
        profile = builders[name].backend.profile
        wall = results[name]["wall"]
        speedup = ref["wall"] / wall if wall > 0 else float("inf")
        table.add_row(
            [
                name,
                format_seconds(wall),
                f"{speedup:.2f}x",
                format_bytes(profile.cache_peak_bytes) if name == "batched" else "-",
                profile.device_launches or "-",
            ]
        )
        report["backends"][name] = {
            "wall_seconds": wall,
            "speedup_vs_numpy": speedup,
            "profile": profile.as_dict(),
        }
    report["batched_speedup_vs_numpy"] = report["backends"]["batched"][
        "speedup_vs_numpy"
    ]
    print(table.render())
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="minimal settings, fewer sweeps"
    )
    parser.add_argument("--sweeps", type=int, default=None)
    parser.add_argument("--output", type=Path, default=OUTPUT)
    args = parser.parse_args(argv)
    level = "minimal" if args.quick else "light"
    n_sweeps = args.sweeps or (4 if args.quick else 8)
    report = run(n_sweeps, level)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    if report["batched_speedup_vs_numpy"] <= 1.0:
        print("WARNING: batched did not beat the legacy over-limit path")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

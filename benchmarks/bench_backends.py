"""Execution-backend comparison on an over-cache-limit system.

Forces ``cache_limit=0`` so the full basis table may not be held, then
times repeated Sumup + H phase sweeps (the SCF/CPSCF hot loop) under
each registered backend:

* ``numpy``  — the legacy over-limit path: every sweep re-evaluates
  every basis block from scratch.
* ``batched`` — bounded LRU block cache: blocks are evaluated once and
  streamed from the cache on later sweeps.
* ``device`` — priced OpenCL-model launches over staged device buffers.

The measurement itself lives in :mod:`repro.obs.bench` (shared with the
``repro bench-check`` regression gate); this script prints the table,
writes ``BENCH_backends.json`` at the repo root — including the
provenance block the regression gate and EXPERIMENTS.md footers rely
on — and fails if batched does not beat the legacy path.  Run::

    PYTHONPATH=src python benchmarks/bench_backends.py [--quick]

or via ``make bench-smoke``.  All three backends are verified
bit-identical on every sweep before any timing is reported.  Compare a
fresh run against the committed baseline with ``make bench-check``.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.obs.bench import backend_emission, emission_summary_rows
from repro.obs.report import Provenance
from repro.utils.reports import TableFormatter

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_backends.json"


def run(n_sweeps: int, level: str) -> dict:
    report = backend_emission(level, n_sweeps)
    print(
        f"water ({level}): {report['n_points']:,} grid points x "
        f"{report['n_basis']} basis functions, cache_limit=0 "
        f"(full table disallowed), {n_sweeps} Sumup+H sweeps"
    )
    table = TableFormatter(
        ["backend", "wall", "speedup vs numpy", "cache peak", "launches"],
        title="backend comparison (bit-identical outputs)",
    )
    for row in emission_summary_rows(report):
        table.add_row(row)
    print(table.render())
    print(Provenance(**report["provenance"]).footer_markdown())
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="minimal settings, fewer sweeps"
    )
    parser.add_argument("--sweeps", type=int, default=None)
    parser.add_argument("--output", type=Path, default=OUTPUT)
    args = parser.parse_args(argv)
    level = "minimal" if args.quick else "light"
    n_sweeps = args.sweeps or (4 if args.quick else 8)
    report = run(n_sweeps, level)
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    if report["timings"]["batched_speedup_vs_numpy"] <= 1.0:
        print("WARNING: batched did not beat the legacy over-limit path")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 10 — rho_multipole AllReduce: baseline vs packed vs hierarchical."""

from conftest import emit

from repro.experiments import run_fig10_allreduce
from repro.experiments.common import full_scale_enabled
from repro.experiments.fig10_allreduce import PAPER_RANKS_HPC1
from repro.runtime import HPC1_SUNWAY, HPC2_AMD

_QUICK = {30002: (256, 1024, 4096), 60002: (512, 2048, 8192)}


def _sweep():
    return PAPER_RANKS_HPC1 if full_scale_enabled() else _QUICK


def test_fig10a_allreduce_hpc1(benchmark):
    """HPC#1: packed vs baseline (no SHM, so no hierarchical variant)."""
    result = benchmark.pedantic(
        run_fig10_allreduce, args=(HPC1_SUNWAY,), kwargs={"sweeps": _sweep()},
        iterations=1, rounds=1,
    )
    emit(benchmark, result.render())
    speedups = result.speedups("packed")
    assert all(s > 5.0 for s in speedups.values())  # paper: 8.2x - 34.9x


def test_fig10b_allreduce_hpc2(benchmark):
    """HPC#2: packed and packed-hierarchical vs baseline."""
    result = benchmark.pedantic(
        run_fig10_allreduce, args=(HPC2_AMD,), kwargs={"sweeps": _sweep()},
        iterations=1, rounds=1,
    )
    emit(benchmark, result.render())
    packed = result.speedups("packed")
    hier = result.speedups("packed_hierarchical")
    for key in packed:
        assert hier[key] > packed[key] > 1.0  # hierarchy strictly wins

"""Block-sparse screening payoff on a polyethylene chain.

Times repeated Sumup + H phase sweeps (the SCF/CPSCF hot loop) on an
all-trans H(C2H4)nH chain — the paper's linear-scaling workload shape —
under two builders sharing one basis/grid/batch decomposition:

* ``dense``    — ``screening_threshold = 0``: every batch contracts the
  full basis, the exact pre-screening code path.
* ``screened`` — the default screening threshold: each batch contracts
  only the functions whose effective radius reaches it, so whole
  atom-pair blocks are never touched.

The measurement itself lives in :mod:`repro.obs.bench` (shared with the
``repro bench-check`` regression gate); this script prints the table,
writes ``BENCH_sparse.json`` at the repo root — provenance block
included — and fails unless the screening pattern actually pays:
block-evaluation reduction >= 3x and fill fraction < 30%.  Run::

    PYTHONPATH=src python benchmarks/bench_sparse.py [--quick]

or via ``make bench-smoke``.  Screened outputs are checked against the
dense ones within the physics tolerance before any timing is reported.
Compare a fresh run against the committed baseline with
``make bench-check``.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.obs.bench import sparse_emission
from repro.obs.report import Provenance
from repro.utils.reports import TableFormatter, format_seconds

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_sparse.json"

#: Chain length whose pattern clears the payoff gates below (98 atoms).
N_UNITS = 16

#: The committed payoff gates: the locality seam must actually drop work.
MIN_BLOCK_REDUCTION = 3.0
MAX_FILL_FRACTION = 0.30


def run(n_units: int, n_sweeps: int, level: str) -> dict:
    report = sparse_emission(n_units, n_sweeps, level=level)
    stats = report["sparsity"]
    print(
        f"polyethylene H(C2H4)nH, n={n_units} ({report['n_atoms']} atoms, "
        f"{level}): {report['n_points']:,} grid points x "
        f"{report['n_basis']} basis functions, threshold="
        f"{report['threshold']:g}, {n_sweeps} Sumup+H sweeps"
    )
    table = TableFormatter(
        ["builder", "wall", "blocks evaluated", "fill", "reduction"],
        title="dense vs screened (outputs agree within physics tolerance)",
    )
    timings = report["timings"]
    table.add_row(
        [
            "dense",
            format_seconds(timings["dense_wall_seconds"]),
            f"{stats['blocks_dense']:,}",
            "1.000",
            "1.00x",
        ]
    )
    table.add_row(
        [
            "screened",
            format_seconds(timings["screened_wall_seconds"]),
            f"{stats['blocks_active']:,}",
            f"{stats['fill_fraction']:.3f}",
            f"{report['block_reduction']:.2f}x",
        ]
    )
    print(table.render())
    print(
        f"max |dense - screened|: density "
        f"{report['diff']['density_max_diff']:.3e}, potential "
        f"{report['diff']['potential_max_diff']:.3e}"
    )
    print(Provenance(**report["provenance"]).footer_markdown())
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="fewer sweeps (same chain)"
    )
    parser.add_argument("--units", type=int, default=N_UNITS)
    parser.add_argument("--sweeps", type=int, default=None)
    parser.add_argument("--output", type=Path, default=OUTPUT)
    args = parser.parse_args(argv)
    n_sweeps = args.sweeps or (2 if args.quick else 4)
    report = run(args.units, n_sweeps, level="minimal")
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    ok = True
    if report["block_reduction"] < MIN_BLOCK_REDUCTION:
        print(
            f"WARNING: block reduction {report['block_reduction']:.2f}x is "
            f"below the {MIN_BLOCK_REDUCTION:g}x gate"
        )
        ok = False
    if report["sparsity"]["fill_fraction"] >= MAX_FILL_FRACTION:
        print(
            f"WARNING: fill fraction {report['sparsity']['fill_fraction']:.3f} "
            f"is not below the {MAX_FILL_FRACTION:g} gate"
        )
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

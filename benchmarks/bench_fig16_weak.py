"""Figure 16 — weak scaling across the polyethylene family."""

from conftest import emit

from repro.experiments import run_fig16_weak
from repro.experiments.common import full_scale_enabled
from repro.experiments.fig16_weak import WEAK_CASES

_QUICK = ((30002, 2500, 2048), (60002, 5000, 4096))


def test_fig16_weak_scaling(benchmark):
    cases = WEAK_CASES if full_scale_enabled() else _QUICK
    result = benchmark.pedantic(
        run_fig16_weak, kwargs={"cases": cases}, iterations=1, rounds=1
    )
    emit(benchmark, result.render())
    for series in result.series:
        eff = series.efficiencies()
        # Efficiency declines with size (O(N^1.7) response potential)
        # but stays in the paper's ballpark (74-77% at 200k atoms).
        assert all(b <= a * 1.02 for a, b in zip(eff, eff[1:]))
        assert eff[-1] > 0.4

"""Figure 9 — locality-enhancing task mapping (memory, access, splines)."""

from conftest import emit

from repro.experiments import (
    run_fig09a_memory,
    run_fig09b_dense_access,
    run_fig09c_splines,
)
from repro.experiments.common import full_scale_enabled


def test_fig09a_hamiltonian_memory(benchmark):
    """Per-rank Hamiltonian storage, existing vs proposed (RBD-like)."""
    ranks = (64, 128, 256, 512) if full_scale_enabled() else (64, 256, 512)
    result = benchmark.pedantic(
        run_fig09a_memory, args=(ranks,), iterations=1, rounds=1
    )
    emit(benchmark, result.render())
    assert all(
        avg < ex for avg, ex in zip(result.proposed_avg_kb, result.existing_kb)
    )


def test_fig09b_dense_access_gains(benchmark):
    """n(1)/H(1) improvements from dense local Hamiltonian access."""
    result = benchmark.pedantic(run_fig09b_dense_access, iterations=1, rounds=1)
    emit(benchmark, result.render())
    assert all(gain > 0 for gain in result.improvements().values())


def test_fig09c_spline_counts(benchmark):
    """Cubic splines constructed per rank under both mappings."""
    result = benchmark.pedantic(
        run_fig09c_splines, kwargs={"n_ranks": 512}, iterations=1, rounds=1
    )
    emit(benchmark, result.render())
    assert result.proposed_counts.mean() < result.existing_counts.mean()

"""Fleet throughput: N molecules through one backend vs N isolated runs.

A screening-service workload — many near-duplicate small jobs (H2
bond-length variants, distinct request seeds) — executed twice:

* ``sequential`` — one isolated ``run_physics`` per request, each
  paying its own substrate build and every kernel-launch overhead;
* ``fleet``      — the :class:`~repro.fleet.driver.FleetDriver`:
  basis tables registered once, identical-physics requests computed
  once per group, SCF/CPSCF cycles of the groups interleaved so the
  shared device fuses same-name launches at every round boundary.

Every per-request result payload is asserted byte-identical between
the two modes before any number is reported.  The measurement lives in
:func:`repro.obs.bench.fleet_emission` (shared with the ``repro
bench-check`` regression gate); this script prints the table, writes
``BENCH_fleet.json`` at the repo root — provenance block included —
and fails unless the deterministic device-model account clears the
committed throughput gate.  Run::

    PYTHONPATH=src python benchmarks/bench_fleet.py [--quick]

or via ``make bench-smoke``.  Compare a fresh run against the
committed baseline with ``make fleet-check`` (part of ``make verify``).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.obs.bench import fleet_emission
from repro.obs.report import Provenance
from repro.utils.reports import TableFormatter, format_seconds

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

#: Full-run fleet shape: 16 requests over 4 distinct bond lengths.
N_REQUESTS = 16
N_DISTINCT = 4

#: The committed throughput gate on the deterministic model account.
MIN_MODEL_SPEEDUP = 10.0


def run(n_requests: int, n_distinct: int, level: str) -> dict:
    report = fleet_emission(
        level=level, n_requests=n_requests, n_distinct=n_distinct
    )
    print(
        f"fleet of {n_requests} H2 jobs over {n_distinct} bond-length "
        f"variant(s) ({level}, {report['backend']} backend): "
        f"{report['groups']} physics group(s), {report['rounds']} "
        f"interleaved round(s), basis tables registered "
        f"{report['registry']['registered']}x / reused "
        f"{report['registry']['reused']}x"
    )
    table = TableFormatter(
        ["mode", "wall", "modeled", "launches", "molecules/s (model)"],
        title="sequential vs fleet (per-request payloads byte-identical)",
    )
    timings = report["timings"]
    model = report["model"]
    seq_modeled = model["sequential"]["modeled_seconds"]
    fleet_modeled = model["fleet"]["modeled_seconds"]
    table.add_row(
        [
            "sequential",
            format_seconds(timings["sequential_wall_seconds"]),
            format_seconds(seq_modeled),
            f"{report['launches']['sequential']:,}",
            f"{n_requests / seq_modeled:,.0f}" if seq_modeled > 0 else "-",
        ]
    )
    table.add_row(
        [
            "fleet",
            format_seconds(timings["fleet_wall_seconds"]),
            format_seconds(fleet_modeled),
            f"{report['launches']['fused']:,}",
            f"{n_requests / fleet_modeled:,.0f}" if fleet_modeled > 0 else "-",
        ]
    )
    print(table.render())
    fleet_wall = timings["fleet_wall_seconds"]
    measured_rate = n_requests / fleet_wall if fleet_wall > 0 else float("inf")
    print(
        f"model throughput speedup: "
        f"{model['molecules_per_second_speedup']:.2f}x  "
        f"(wall: {timings['wall_speedup']:.2f}x, "
        f"{measured_rate:.1f} molecules/s measured)"
    )
    print(Provenance(**report["provenance"]).footer_markdown())
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller fleet (8 jobs over 2)"
    )
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--distinct", type=int, default=None)
    parser.add_argument("--output", type=Path, default=OUTPUT)
    args = parser.parse_args(argv)
    n_requests = args.requests or (8 if args.quick else N_REQUESTS)
    n_distinct = args.distinct or (2 if args.quick else N_DISTINCT)
    report = run(n_requests, n_distinct, level="minimal")
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    speedup = report["model"]["molecules_per_second_speedup"]
    # The quick fleet fuses fewer molecules per round; scale the gate.
    gate = MIN_MODEL_SPEEDUP * n_requests / N_REQUESTS
    if speedup < gate:
        print(
            f"WARNING: model throughput speedup {speedup:.2f}x is below "
            f"the {gate:g}x gate"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 14 — overall per-phase impact of all innovations."""

from conftest import emit

from repro.experiments import run_fig14_overall
from repro.experiments.common import full_scale_enabled
from repro.experiments.fig14_overall import DEFAULT_CASES

_QUICK = (
    ("RBD/64@HPC1", "rbd", "hpc1", 64),
    ("Poly/2048@HPC2", "poly30002", "hpc2", 2048),
)


def test_fig14_overall_impacts(benchmark):
    cases = DEFAULT_CASES if full_scale_enabled() else _QUICK
    result = benchmark.pedantic(
        run_fig14_overall, kwargs={"cases": cases}, iterations=1, rounds=1
    )
    emit(benchmark, result.render())
    for case in result.cases:
        assert case.overall_speedup > 1.5  # paper: up to 11.1x overall
        # Comm is one of the biggest winners at scale.
        if "Poly" in case.label:
            assert case.phase_speedups()["Comm"] > 5.0
